type t = { mutable data : int array; mutable size : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; size = 0 }

let make n x = { data = Array.make (max n 1) x; size = n }

let size v = v.size
let is_empty v = v.size = 0

let get v i =
  assert (i >= 0 && i < v.size);
  Array.unsafe_get v.data i

let set v i x =
  assert (i >= 0 && i < v.size);
  Array.unsafe_set v.data i x

let ensure v n =
  if n > Array.length v.data then begin
    let capacity = ref (Array.length v.data) in
    while !capacity < n do
      capacity := !capacity * 2
    done;
    let data = Array.make !capacity 0 in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end

let push v x =
  ensure v (v.size + 1);
  Array.unsafe_set v.data v.size x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then invalid_arg "Veci.pop: empty";
  v.size <- v.size - 1;
  Array.unsafe_get v.data v.size

let last v =
  if v.size = 0 then invalid_arg "Veci.last: empty";
  Array.unsafe_get v.data (v.size - 1)

let shrink v n =
  assert (n >= 0 && n <= v.size);
  v.size <- n

let clear v = v.size <- 0

let grow v n x =
  ensure v n;
  while v.size < n do
    Array.unsafe_set v.data v.size x;
    v.size <- v.size + 1
  done

let iter f v =
  for i = 0 to v.size - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.size && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let to_array v = Array.sub v.data 0 v.size
let to_list v = Array.to_list (to_array v)

let of_array a =
  let n = Array.length a in
  let v = create ~capacity:(max n 1) () in
  Array.blit a 0 v.data 0 n;
  v.size <- n;
  v

let of_list l = of_array (Array.of_list l)

let swap v i j =
  let x = get v i in
  set v i (get v j);
  set v j x

let sort v =
  let a = to_array v in
  Array.sort compare a;
  Array.blit a 0 v.data 0 v.size

let copy v = { data = Array.copy v.data; size = v.size }

let pp fmt v =
  Format.fprintf fmt "[|";
  iteri (fun i x -> if i > 0 then Format.fprintf fmt "; %d" x else Format.fprintf fmt "%d" x) v;
  Format.fprintf fmt "|]"
