lib/support/rng.mli:
