lib/support/veci.ml: Array Format
