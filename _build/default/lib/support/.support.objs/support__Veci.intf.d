lib/support/veci.mli: Format
