lib/support/vecf.ml: Array
