lib/support/vecf.mli:
