(** Growable vectors of unboxed [int]s.

    Used pervasively by the AIG, CNF and SAT packages for adjacency
    lists, clause storage and trails.  All indices are 0-based; reading
    outside [0, size) is a programming error checked by assertion. *)

type t

(** [create ()] is an empty vector. *)
val create : ?capacity:int -> unit -> t

(** [make n x] is a vector of [n] elements all equal to [x]. *)
val make : int -> int -> t

(** Number of elements currently stored. *)
val size : t -> int

val is_empty : t -> bool

val get : t -> int -> int
val set : t -> int -> int -> unit

(** Append one element, growing the backing store as needed. *)
val push : t -> int -> unit

(** Remove and return the last element.  @raise Invalid_argument if empty. *)
val pop : t -> int

(** Last element without removing it. *)
val last : t -> int

(** [shrink v n] truncates [v] to its first [n] elements. *)
val shrink : t -> int -> unit

(** Remove all elements (capacity is retained). *)
val clear : t -> unit

(** [grow v n x] extends [v] with copies of [x] until [size v >= n]. *)
val grow : t -> int -> int -> unit

val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val exists : (int -> bool) -> t -> bool
val to_array : t -> int array
val to_list : t -> int list
val of_array : int array -> t
val of_list : int list -> t

(** Swap the elements at two indices. *)
val swap : t -> int -> int -> unit

(** In-place ascending sort. *)
val sort : t -> unit

val copy : t -> t
val pp : Format.formatter -> t -> unit
