(** Deterministic pseudo-random number generation (splitmix64).

    Benchmarks and simulation must be reproducible run-to-run, so all
    randomness in the project flows through explicitly seeded [Rng.t]
    states rather than [Stdlib.Random]. *)

type t

(** [create seed] is a fresh generator; equal seeds give equal streams. *)
val create : int -> t

(** Next raw 64-bit value. *)
val int64 : t -> int64

(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** [split t] derives an independent generator (for per-object streams). *)
val split : t -> t
