(* Splitmix64 (Steele et al., "Fast splittable pseudorandom number
   generators"): a tiny, high-quality, seedable generator. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let int64 t =
  let z = Int64.add t.state 0x9E3779B97F4A7C15L in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (Int64.to_int (int64 t) land max_int) mod bound

let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let split t = { state = int64 t }
