(** The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)

(** [term i] is the [i]-th term, 0-based. *)
val term : int -> int
