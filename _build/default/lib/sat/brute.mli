(** Reference solver: exhaustive enumeration with unit propagation.

    Deliberately simple and slow — an independent oracle the test suite
    compares the CDCL solver against on small random formulas. *)

type result =
  | Sat of bool array
  | Unsat

(** [solve f] decides [f] by enumerating assignments.
    @raise Invalid_argument when [f] has more than 24 variables. *)
val solve : Cnf.Formula.t -> result
