(** Indexed binary max-heap over variable indices, ordered by an
    external score function — the VSIDS decision order.  Supports
    decrease/increase-key via {!update} because scores change while
    variables sit in the heap. *)

type t

(** [create score] is an empty heap comparing elements by [score]
    (called at comparison time, so callers mutate scores then
    {!update}). *)
val create : (int -> float) -> t

val is_empty : t -> bool
val mem : t -> int -> bool

(** Insert a new element (no-op if present). *)
val insert : t -> int -> unit

(** Remove and return the maximum-score element.
    @raise Invalid_argument if empty. *)
val pop : t -> int

(** Restore heap order around [x] after its score changed
    (no-op if absent). *)
val update : t -> int -> unit

val size : t -> int
