(** Library interface: the proof-logging CDCL solver and companions. *)

module Solver = Solver
module Brute = Brute
module Luby = Luby
module Heap = Heap
