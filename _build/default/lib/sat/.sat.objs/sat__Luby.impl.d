lib/sat/luby.ml:
