lib/sat/luby.mli:
