lib/sat/heap.mli:
