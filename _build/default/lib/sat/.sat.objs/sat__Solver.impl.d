lib/sat/solver.ml: Aig Array Cnf Hashtbl Heap List Luby Proof Support
