lib/sat/heap.ml: Support
