lib/sat/solver.mli: Aig Cnf Proof
