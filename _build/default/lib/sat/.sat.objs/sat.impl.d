lib/sat/sat.ml: Brute Heap Luby Solver
