module Veci = Support.Veci

type t = {
  score : int -> float;
  heap : Veci.t; (* heap.(i) = element at heap position i *)
  pos : Veci.t; (* pos.(x) = heap position of element x, or -1 *)
}

let create score = { score; heap = Veci.create (); pos = Veci.create () }

let is_empty t = Veci.is_empty t.heap
let size t = Veci.size t.heap

let mem t x = x < Veci.size t.pos && Veci.get t.pos x >= 0

let swap t i j =
  let xi = Veci.get t.heap i and xj = Veci.get t.heap j in
  Veci.set t.heap i xj;
  Veci.set t.heap j xi;
  Veci.set t.pos xj i;
  Veci.set t.pos xi j

let better t i j = t.score (Veci.get t.heap i) > t.score (Veci.get t.heap j)

let rec up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if better t i parent then begin
      swap t i parent;
      up t parent
    end
  end

let rec down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let n = Veci.size t.heap in
  let best = ref i in
  if l < n && better t l !best then best := l;
  if r < n && better t r !best then best := r;
  if !best <> i then begin
    swap t i !best;
    down t !best
  end

let insert t x =
  Veci.grow t.pos (x + 1) (-1);
  if Veci.get t.pos x < 0 then begin
    Veci.push t.heap x;
    Veci.set t.pos x (Veci.size t.heap - 1);
    up t (Veci.size t.heap - 1)
  end

let pop t =
  if is_empty t then invalid_arg "Heap.pop: empty";
  let top = Veci.get t.heap 0 in
  let n = Veci.size t.heap in
  swap t 0 (n - 1);
  ignore (Veci.pop t.heap);
  Veci.set t.pos top (-1);
  if not (is_empty t) then down t 0;
  top

let update t x =
  if mem t x then begin
    let i = Veci.get t.pos x in
    up t i;
    down t (Veci.get t.pos x)
  end
