(* MiniSat's formulation: locate the smallest complete block of length
   2^(seq+1) - 1 containing index [i], then recurse into the repeated
   prefix until [i] lands on a block's last position. *)
let term i =
  if i < 0 then invalid_arg "Luby.term: negative index";
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq
