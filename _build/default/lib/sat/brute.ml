type result =
  | Sat of bool array
  | Unsat

let solve f =
  let n = Cnf.Formula.num_vars f in
  if n > 24 then invalid_arg "Brute.solve: too many variables";
  let clauses = Cnf.Formula.to_list f in
  let assignment = Array.make n false in
  let rec try_mask mask =
    if mask >= 1 lsl n then Unsat
    else begin
      for v = 0 to n - 1 do
        assignment.(v) <- (mask lsr v) land 1 = 1
      done;
      if List.for_all (fun c -> Cnf.Clause.satisfied_by c assignment) clauses then
        Sat (Array.copy assignment)
      else try_mask (mask + 1)
    end
  in
  if List.exists Cnf.Clause.is_empty clauses then Unsat else try_mask 0
