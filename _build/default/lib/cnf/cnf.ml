(** Library interface: clauses, formulas, the Tseitin transform and
    DIMACS I/O.  Clients write [Cnf.Clause.resolve], [Cnf.Formula.add],
    [Cnf.Tseitin.miter_formula], [Cnf.Dimacs.to_string]. *)

module Clause = Clause
module Formula = Formula
module Tseitin = Tseitin
module Dimacs = Dimacs
