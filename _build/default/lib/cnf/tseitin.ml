module Lit = Aig.Lit

let constant_unit = Clause.singleton Lit.true_

let clauses_of_and g n =
  let f0 = Aig.fanin0 g n and f1 = Aig.fanin1 g n in
  let ln = Lit.of_var n in
  [
    Clause.of_list [ Lit.neg ln; f0 ];
    Clause.of_list [ Lit.neg ln; f1 ];
    Clause.of_list [ ln; Lit.neg f0; Lit.neg f1 ];
  ]

let add_and f g n = List.iter (fun c -> ignore (Formula.add f c)) (clauses_of_and g n)

let of_graph g =
  let f = Formula.create () in
  ignore (Formula.add f constant_unit);
  Aig.iter_ands g (fun n -> add_and f g n);
  Formula.ensure_vars f (Aig.num_nodes g);
  f

let of_cone g lits =
  let f = Formula.create () in
  ignore (Formula.add f constant_unit);
  Array.iter (fun n -> add_and f g n) (Aig.Cone.tfi_ands g lits);
  Formula.ensure_vars f (Aig.num_nodes g);
  f

let add_cone f g ~added lits =
  Array.iter
    (fun n ->
      if not added.(n) then begin
        added.(n) <- true;
        add_and f g n
      end)
    (Aig.Cone.tfi_ands g lits)

let miter_formula g =
  if Aig.num_outputs g <> 1 then invalid_arg "Tseitin.miter_formula: expected one output";
  let f = of_graph g in
  ignore (Formula.add f (Clause.singleton (Aig.output g 0)));
  f
