(** DIMACS CNF reading and writing. *)

exception Parse_error of string

val to_string : Formula.t -> string
val write_file : string -> Formula.t -> unit

(** @raise Parse_error on malformed input. *)
val of_string : string -> Formula.t

val read_file : string -> Formula.t
