lib/cnf/dimacs.ml: Aig Buffer Clause Formula Fun List Printf String
