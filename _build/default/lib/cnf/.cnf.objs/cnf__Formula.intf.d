lib/cnf/formula.mli: Aig Clause Format
