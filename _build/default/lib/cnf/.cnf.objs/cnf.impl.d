lib/cnf/cnf.ml: Clause Dimacs Formula Tseitin
