lib/cnf/clause.mli: Aig Format
