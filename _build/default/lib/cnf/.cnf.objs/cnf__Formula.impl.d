lib/cnf/formula.ml: Array Clause Format Hashtbl List
