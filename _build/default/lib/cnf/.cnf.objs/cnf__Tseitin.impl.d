lib/cnf/tseitin.ml: Aig Array Clause Formula List
