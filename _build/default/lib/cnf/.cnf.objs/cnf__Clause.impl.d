lib/cnf/clause.ml: Aig Array Format List Seq Stdlib String
