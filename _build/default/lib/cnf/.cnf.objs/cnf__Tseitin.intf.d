lib/cnf/tseitin.mli: Aig Clause Formula
