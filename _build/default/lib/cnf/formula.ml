type t = {
  mutable clauses : Clause.t array;
  mutable size : int;
  mutable num_vars : int;
  index : (Clause.t, unit) Hashtbl.t;
}

let create () =
  { clauses = Array.make 16 Clause.empty; size = 0; num_vars = 0; index = Hashtbl.create 64 }

let ensure_capacity f n =
  if n > Array.length f.clauses then begin
    let capacity = ref (Array.length f.clauses) in
    while !capacity < n do
      capacity := !capacity * 2
    done;
    let clauses = Array.make !capacity Clause.empty in
    Array.blit f.clauses 0 clauses 0 f.size;
    f.clauses <- clauses
  end

let add f c =
  ensure_capacity f (f.size + 1);
  f.clauses.(f.size) <- c;
  f.size <- f.size + 1;
  f.num_vars <- max f.num_vars (Clause.max_var c + 1);
  if not (Hashtbl.mem f.index c) then Hashtbl.add f.index c ();
  f.size - 1

let add_list f lits = add f (Clause.of_list lits)

let num_clauses f = f.size
let num_vars f = f.num_vars
let ensure_vars f n = f.num_vars <- max f.num_vars n

let clause f i =
  if i < 0 || i >= f.size then invalid_arg "Formula.clause: out of range";
  f.clauses.(i)

let iter fn f =
  for i = 0 to f.size - 1 do
    fn f.clauses.(i)
  done

let iteri fn f =
  for i = 0 to f.size - 1 do
    fn i f.clauses.(i)
  done

let fold fn acc f =
  let acc = ref acc in
  iter (fun c -> acc := fn !acc c) f;
  !acc

let to_list f = List.rev (fold (fun acc c -> c :: acc) [] f)

let mem f c = Hashtbl.mem f.index c

let satisfied_by f assignment =
  let ok = ref true in
  iter (fun c -> if not (Clause.satisfied_by c assignment) then ok := false) f;
  !ok

let copy f =
  {
    clauses = Array.copy f.clauses;
    size = f.size;
    num_vars = f.num_vars;
    index = Hashtbl.copy f.index;
  }

let pp fmt f =
  Format.fprintf fmt "@[<v>";
  iter (fun c -> Format.fprintf fmt "%a@," Clause.pp c) f;
  Format.fprintf fmt "@]"
