(** CNF formulas: an ordered collection of clauses over variables
    [0 .. num_vars - 1]. *)

type t

val create : unit -> t

(** Append a clause; widens [num_vars] as needed.  Returns the clause's
    index within the formula. *)
val add : t -> Clause.t -> int

val add_list : t -> Aig.Lit.t list -> int

val num_clauses : t -> int

(** One more than the largest variable mentioned (0 for the empty
    formula); can be raised explicitly for formulas with unused
    trailing variables. *)
val num_vars : t -> int

val ensure_vars : t -> int -> unit

val clause : t -> int -> Clause.t
val iter : (Clause.t -> unit) -> t -> unit
val iteri : (int -> Clause.t -> unit) -> t -> unit
val fold : ('a -> Clause.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Clause.t list

(** Membership test on the clause set (hashed; used by the proof
    checker to validate leaves). *)
val mem : t -> Clause.t -> bool

(** Evaluate under a total assignment. *)
val satisfied_by : t -> bool array -> bool

val copy : t -> t
val pp : Format.formatter -> t -> unit
