exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let to_string f =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "p cnf %d %d\n" (Formula.num_vars f) (Formula.num_clauses f);
  Formula.iter (fun c -> Buffer.add_string buf (Clause.to_dimacs_string c); Buffer.add_char buf '\n') f;
  Buffer.contents buf

let write_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string f))

let of_string text =
  let f = Formula.create () in
  let lines = String.split_on_char '\n' text in
  let saw_header = ref false in
  let pending = ref [] in
  let flush_clause () =
    (* DIMACS clauses are terminated by 0, possibly spanning lines. *)
    ignore (Formula.add f (Clause.of_list (List.rev_map Aig.Lit.of_dimacs !pending)));
    pending := []
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        (match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "p"; "cnf"; vars; _clauses ] -> (
          match int_of_string_opt vars with
          | Some v -> Formula.ensure_vars f v
          | None -> fail "malformed header %S" line)
        | _ -> fail "malformed header %S" line);
        saw_header := true
      end
      else begin
        if not !saw_header then fail "clause before header";
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | Some 0 -> flush_clause ()
               | Some d -> pending := d :: !pending
               | None -> fail "not a number: %S" tok)
      end)
    lines;
  if !pending <> [] then fail "unterminated clause";
  f

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
