(** The Tseitin transform of an AIG.

    Because the AIG and the CNF share the literal encoding, the mapping
    is the identity: AIG node [n] becomes CNF variable [n].  Each AND
    node [n = f0 AND f1] contributes the three definitional clauses

    {v (~n f0) (~n f1) (n ~f0 ~f1) v}

    and the constant node contributes the unit clause [(1)] (literal 1
    = "variable 0 is false"), fixing AIG literal 0 to false.  The
    conjunction of these clauses is satisfied exactly by the consistent
    simulations of the graph. *)

(** Definitional clauses of every AND node, plus the constant unit.
    [num_vars] equals [Graph.num_nodes]. *)
val of_graph : Aig.t -> Formula.t

(** Definitional clauses of the AND nodes in the transitive fanin of
    [lits] only, plus the constant unit.  Variables keep their graph
    identities, so formulas of overlapping cones agree. *)
val of_cone : Aig.t -> Aig.Lit.t list -> Formula.t

(** Add the cone clauses of [lits] to an existing formula (same
    identity mapping), skipping AND nodes already present according to
    [added], a caller-maintained per-node bitmap.  This is how the
    sweeping engine accumulates one CNF across many queries. *)
val add_cone : Formula.t -> Aig.t -> added:bool array -> Aig.Lit.t list -> unit

(** The three definitional clauses of one AND node. *)
val clauses_of_and : Aig.t -> int -> Clause.t list

(** The constant-node unit clause [(1)]. *)
val constant_unit : Clause.t

(** [miter_formula g] is [of_graph g] plus the unit clause asserting
    output 0, i.e. the CNF whose unsatisfiability certifies that the
    (single) miter output is constant false.
    @raise Invalid_argument unless [g] has exactly one output. *)
val miter_formula : Aig.t -> Formula.t
