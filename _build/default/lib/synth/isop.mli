(** Irredundant sum-of-products from truth tables (Minato–Morreale).

    Computes an irredundant cover of any function of up to 6 variables
    given as a packed truth table — the classical interval-based ISOP
    recursion over [(lower, upper)] bounds.  Used by window
    resynthesis to turn a cut function back into logic. *)

type cube = {
  pos : int;  (** bitmask of variables appearing positively *)
  neg : int;  (** bitmask of variables appearing negatively *)
}

(** Number of literals in a cube. *)
val cube_size : cube -> int

(** All-ones truth table of a function over [vars] variables. *)
val full_mask : int -> int64

(** Truth table of one cube over [vars] variables. *)
val cube_cover : int -> cube -> int64

(** Truth table covered by a cube list over [vars] variables. *)
val cover : int -> cube list -> int64

(** [compute ~vars truth] is an irredundant cover of [truth] (a
    function of [vars] variables packed into bits [0 .. 2^vars-1]).
    @raise Invalid_argument unless [0 <= vars <= 6]. *)
val compute : vars:int -> int64 -> cube list

(** Total literal count of a cover. *)
val literal_count : cube list -> int

val pp_cube : Format.formatter -> cube -> unit
