(** Rebuilding logic from local functions. *)

(** [sop_to_aig g leaves cubes] materializes a cube cover over leaf
    literals [leaves] into [g] (balanced AND per cube, balanced OR of
    cubes) and returns the result literal. *)
val sop_to_aig : Aig.t -> Aig.Lit.t array -> Isop.cube list -> Aig.Lit.t

(** [of_truth g leaves truth] resynthesizes the packed truth table
    (a function of [Array.length leaves] variables, at most 6) into
    [g] via the cheaper of ISOP([truth]) and ISOP([¬truth]) inverted. *)
val of_truth : Aig.t -> Aig.Lit.t array -> int64 -> Aig.Lit.t
