(** Cut sweeping: SAT-free functional reduction.

    Rebuilds a graph in topological order maintaining a dictionary from
    {e (cut leaf literals, canonical truth table)} to already-built
    literals.  When a node's cut function (over already-rebuilt leaves)
    is found in the dictionary — directly or complemented — the node is
    replaced by the recorded literal instead of creating a new AND:
    functional matches that structural hashing misses (Kuehlmann's cut
    sweeping).  Weaker than {e fraiging} (only window functions over up
    to [k] shared leaves are matched) but needs no SAT calls. *)

(** [reduce ?k ?npn ?max_cuts g] returns a functionally identical
    graph with matched nodes merged ([k] defaults to 4, [max_cuts] to
    8).  With [~npn:true], cut functions of up to 4 leaves are matched
    up to input negation/permutation and output negation
    ({!Npn.canonical}), catching strictly more merges.  Unreachable
    leftovers are cleaned up. *)
val reduce : ?k:int -> ?npn:bool -> ?max_cuts:int -> Aig.t -> Aig.t
