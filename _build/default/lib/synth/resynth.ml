module Lit = Aig.Lit

let cube_to_aig g leaves cube =
  let lits = ref [] in
  Array.iteri
    (fun v leaf ->
      if (cube.Isop.pos lsr v) land 1 = 1 then lits := leaf :: !lits;
      if (cube.Isop.neg lsr v) land 1 = 1 then lits := Lit.neg leaf :: !lits)
    leaves;
  Aig.and_list g !lits

let sop_to_aig g leaves cubes =
  Aig.or_list g (List.map (cube_to_aig g leaves) cubes)

let of_truth g leaves truth =
  let vars = Array.length leaves in
  if vars > 6 then invalid_arg "Resynth.of_truth: more than 6 leaves";
  let mask = Isop.full_mask vars in
  let direct = Isop.compute ~vars truth in
  let complement = Isop.compute ~vars (Int64.logand (Int64.lognot truth) mask) in
  if Isop.literal_count complement < Isop.literal_count direct then
    Lit.neg (sop_to_aig g leaves complement)
  else sop_to_aig g leaves direct
