type cube = { pos : int; neg : int }

let cube_size c =
  let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
  popcount c.pos + popcount c.neg

(* Bit i of index idx is the value of variable i. *)
let var_masks =
  [|
    0xAAAAAAAAAAAAAAAAL;
    0xCCCCCCCCCCCCCCCCL;
    0xF0F0F0F0F0F0F0F0L;
    0xFF00FF00FF00FF00L;
    0xFFFF0000FFFF0000L;
    0xFFFFFFFF00000000L;
  |]

let full_mask vars =
  if vars >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl vars)) 1L

let cofactor1 f v =
  let m = var_masks.(v) and s = 1 lsl v in
  let hi = Int64.logand f m in
  Int64.logor hi (Int64.shift_right_logical hi s)

let cofactor0 f v =
  let m = Int64.lognot var_masks.(v) and s = 1 lsl v in
  let lo = Int64.logand f m in
  Int64.logor lo (Int64.shift_left lo s)

let depends f v = cofactor0 f v <> cofactor1 f v

let cube_cover vars c =
  let acc = ref (full_mask vars) in
  for v = 0 to vars - 1 do
    if (c.pos lsr v) land 1 = 1 then acc := Int64.logand !acc var_masks.(v);
    if (c.neg lsr v) land 1 = 1 then acc := Int64.logand !acc (Int64.lognot var_masks.(v))
  done;
  Int64.logand !acc (full_mask vars)

let cover vars cubes =
  List.fold_left (fun acc c -> Int64.logor acc (cube_cover vars c)) 0L cubes

let compute ~vars truth =
  if vars < 0 || vars > 6 then invalid_arg "Isop.compute: vars must be within [0, 6]";
  let full = full_mask vars in
  let truth = Int64.logand truth full in
  (* Minato-Morreale over the interval [l, u]: returns a cover C with
     l <= cover C <= u. *)
  let rec isop l u =
    if l = 0L then []
    else if Int64.logand (Int64.lognot u) full = 0L then [ { pos = 0; neg = 0 } ]
    else begin
      let v =
        let rec find i =
          if i < 0 then -1 else if depends l i || depends u i then i else find (i - 1)
        in
        find (vars - 1)
      in
      assert (v >= 0);
      let l0 = Int64.logand (cofactor0 l v) full and l1 = Int64.logand (cofactor1 l v) full in
      let u0 = Int64.logand (cofactor0 u v) full and u1 = Int64.logand (cofactor1 u v) full in
      (* Minterms only reachable with x_v = 0 (resp. 1). *)
      let c0 = isop (Int64.logand l0 (Int64.lognot u1)) u0 in
      let c1 = isop (Int64.logand l1 (Int64.lognot u0)) u1 in
      let cov0 = cover vars c0 and cov1 = cover vars c1 in
      let l_rest =
        Int64.logor
          (Int64.logand l0 (Int64.lognot cov0))
          (Int64.logand l1 (Int64.lognot cov1))
      in
      let c_star = isop l_rest (Int64.logand u0 u1) in
      List.map (fun c -> { c with neg = c.neg lor (1 lsl v) }) c0
      @ List.map (fun c -> { c with pos = c.pos lor (1 lsl v) }) c1
      @ c_star
    end
  in
  isop truth truth

let literal_count cubes = List.fold_left (fun acc c -> acc + cube_size c) 0 cubes

let pp_cube fmt c =
  for v = 0 to 5 do
    if (c.pos lsr v) land 1 = 1 then Format.fprintf fmt "x%d" v;
    if (c.neg lsr v) land 1 = 1 then Format.fprintf fmt "~x%d" v
  done;
  if c.pos = 0 && c.neg = 0 then Format.fprintf fmt "1"
