type transform = {
  perm : int array;
  input_neg : int;
  output_neg : bool;
}

(* g(x_0..x_{n-1}) = output_neg XOR f(y) where y.(perm.(i)) = x_i XOR
   bit i of input_neg. *)
let apply ~vars t truth =
  if vars < 0 || vars > 4 then invalid_arg "Npn.apply: vars must be within [0, 4]";
  let size = 1 lsl vars in
  let out = ref 0L in
  for idx = 0 to size - 1 do
    let src = ref 0 in
    for i = 0 to vars - 1 do
      let bit = ((idx lsr i) land 1) lxor ((t.input_neg lsr i) land 1) in
      if bit = 1 then src := !src lor (1 lsl t.perm.(i))
    done;
    let v = Int64.logand (Int64.shift_right_logical truth !src) 1L = 1L in
    let v = v <> t.output_neg in
    if v then out := Int64.logor !out (Int64.shift_left 1L idx)
  done;
  !out

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let all_transforms vars =
  let perms = permutations (List.init vars Fun.id) in
  List.concat_map
    (fun perm ->
      List.concat_map
        (fun input_neg ->
          List.map
            (fun output_neg -> { perm = Array.of_list perm; input_neg; output_neg })
            [ false; true ])
        (List.init (1 lsl vars) Fun.id))
    perms

(* Cache the transform lists: they only depend on [vars]. *)
let transform_table = Array.init 5 all_transforms

let canonical ~vars truth =
  if vars < 0 || vars > 4 then invalid_arg "Npn.canonical: vars must be within [0, 4]";
  let mask = Isop.full_mask vars in
  let truth = Int64.logand truth mask in
  let best = ref truth in
  let best_t = ref { perm = Array.init vars Fun.id; input_neg = 0; output_neg = false } in
  List.iter
    (fun t ->
      let candidate = apply ~vars t truth in
      if candidate < !best then begin
        best := candidate;
        best_t := t
      end)
    transform_table.(vars);
  (!best, !best_t)

let equivalent ~vars a b = fst (canonical ~vars a) = fst (canonical ~vars b)
