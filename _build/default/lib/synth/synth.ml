(** Library interface: window-level resynthesis — ISOP covers, SOP
    materialization, and SAT-free cut sweeping. *)

module Isop = Isop
module Resynth = Resynth
module Cutsweep = Cutsweep
module Npn = Npn
