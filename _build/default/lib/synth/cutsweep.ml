module Lit = Aig.Lit
module Cut = Aig.Cut

(* Canonicalize a truth table under output complement so that f and
   ~f share a dictionary entry. *)
let canonical vars truth =
  let mask = Isop.full_mask vars in
  let truth = Int64.logand truth mask in
  let comp = Int64.logand (Int64.lognot truth) mask in
  if comp < truth then (comp, true) else (truth, false)

(* NPN keying: write the node's cut function f(L) as
   out XOR canon(x) with x_i = L.(perm.(i)) XOR neg_i (the inverse
   reading of Npn.apply's semantics), so that any two NPN-equivalent
   cut functions over correspondingly transformed leaves share a key. *)
let npn_key truth leaves =
  let vars = Array.length leaves in
  let canon, t = Npn.canonical ~vars truth in
  let adjusted =
    Array.init vars (fun i ->
        Aig.Lit.apply_sign leaves.(t.Npn.perm.(i)) ~neg:((t.Npn.input_neg lsr i) land 1 = 1))
  in
  (Array.to_list adjusted, canon, t.Npn.output_neg)

let reduce ?(k = 4) ?(npn = false) ?(max_cuts = 8) g =
  let cuts = Cut.enumerate g ~k ~max_cuts in
  let fresh = Aig.create ~num_inputs:(Aig.num_inputs g) in
  let map = Array.make (Aig.num_nodes g) Lit.false_ in
  for i = 0 to Aig.num_inputs g - 1 do
    map.(1 + i) <- Aig.input fresh i
  done;
  let map_lit l = Lit.apply_sign map.(Lit.var l) ~neg:(Lit.is_neg l) in
  (* (mapped leaf lits, canonical truth) -> mapped literal *)
  let dictionary : (int list * int64, Lit.t) Hashtbl.t = Hashtbl.create 4096 in
  let key_of cut =
    let leaves = Array.map (fun leaf -> map.(leaf)) cut.Cut.leaves in
    if npn && Array.length leaves <= 4 then npn_key cut.Cut.truth leaves
    else
      let truth, flipped = canonical (Array.length leaves) cut.Cut.truth in
      (Array.to_list leaves, truth, flipped)
  in
  Aig.iter_ands g (fun n ->
      let node_cuts =
        List.filter (fun c -> c.Cut.leaves <> [| n |]) cuts.(n)
      in
      (* Try to resubstitute an already-built literal. *)
      let matched =
        List.find_map
          (fun cut ->
            let leaves, truth, flipped = key_of cut in
            match Hashtbl.find_opt dictionary (leaves, truth) with
            | Some l -> Some (Lit.apply_sign l ~neg:flipped)
            | None -> None)
          node_cuts
      in
      let lit =
        match matched with
        | Some l -> l
        | None -> Aig.and_ fresh (map_lit (Aig.fanin0 g n)) (map_lit (Aig.fanin1 g n))
      in
      map.(n) <- lit;
      (* Register this node's cut functions for later matches. *)
      List.iter
        (fun cut ->
          let leaves, truth, flipped = key_of cut in
          let entry = Lit.apply_sign lit ~neg:flipped in
          if not (Hashtbl.mem dictionary (leaves, truth)) then
            Hashtbl.add dictionary (leaves, truth) entry)
        node_cuts);
  Array.iter (fun l -> Aig.add_output fresh (map_lit l)) (Aig.outputs g);
  Aig.cleanup fresh
