lib/synth/cutsweep.mli: Aig
