lib/synth/resynth.mli: Aig Isop
