lib/synth/resynth.ml: Aig Array Int64 Isop List
