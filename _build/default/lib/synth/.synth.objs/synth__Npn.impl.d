lib/synth/npn.ml: Array Fun Int64 Isop List
