lib/synth/npn.mli:
