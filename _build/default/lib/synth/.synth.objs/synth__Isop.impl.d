lib/synth/isop.ml: Array Format Int64 List
