lib/synth/isop.mli: Format
