lib/synth/synth.ml: Cutsweep Isop Npn Resynth
