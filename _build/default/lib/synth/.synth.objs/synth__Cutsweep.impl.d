lib/synth/cutsweep.ml: Aig Array Hashtbl Int64 Isop List Npn
