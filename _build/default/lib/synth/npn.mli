(** NPN canonicalization of small Boolean functions.

    Two functions are NPN-equivalent when one is obtained from the
    other by Negating inputs, Permuting inputs, and/or Negating the
    output.  Canonizing cut functions up to NPN lets a matcher (e.g.
    {!Cutsweep} with [~npn:true]) identify many more functional matches
    than plain truth-table equality — the standard trick of
    rewriting-based synthesis.

    Functions are packed truth tables over [vars <= 4] variables
    (exhaustive canonization enumerates all [2^4 * 4! * 2 = 768]
    transforms; 4 is also the usual cut size). *)

type transform = {
  perm : int array;  (** input [i] of the transformed function maps to
                         slot [perm.(i)] of the original *)
  input_neg : int;  (** bitmask over the transformed function's inputs *)
  output_neg : bool;
}

(** [canonical ~vars truth] is the smallest truth table NPN-equivalent
    to [truth], together with the transform that produced it.
    @raise Invalid_argument unless [0 <= vars <= 4]. *)
val canonical : vars:int -> int64 -> int64 * transform

(** [apply ~vars t truth] applies a transform to a truth table
    (inverse direction of {!canonical}'s output is not needed by
    clients; this is exposed for tests). *)
val apply : vars:int -> transform -> int64 -> int64

(** [equivalent ~vars a b] iff the two functions are NPN-equivalent. *)
val equivalent : vars:int -> int64 -> int64 -> bool
