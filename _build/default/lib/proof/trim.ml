let cone proof ~root =
  let dst = Resolution.create () in
  let map_leaf src_id clause =
    Resolution.add_leaf ~assumption:(Resolution.is_assumption proof src_id) dst clause
  in
  let root' = Resolution.import dst proof ~root ~map_leaf in
  (dst, root')

let sizes proof ~root =
  (Array.length (Resolution.reachable proof ~root), Resolution.size proof)
