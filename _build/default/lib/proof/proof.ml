(** Library interface: resolution proof store, checker, assumption
    lifting, trimming, statistics and text formats. *)

module Resolution = Resolution
module Checker = Checker
module Lift = Lift
module Trim = Trim
module Pstats = Pstats
module Export = Export
module Rup = Rup
module Compress = Compress
module Interpolant = Interpolant
module Core = Core
