module Clause = Cnf.Clause
module Formula = Cnf.Formula
module Lit = Aig.Lit
module R = Resolution

exception Partition_error of string

let compute proof ~root ~a ~b =
  if not (Clause.is_empty (R.clause_of proof root)) then
    invalid_arg "Interpolant.compute: root is not a refutation";
  let num_vars = max (Formula.num_vars a) (Formula.num_vars b) in
  (* B-occurrence per variable decides both leaf projections and the
     connective used at each resolution step. *)
  let in_b = Array.make (max num_vars 1) false in
  Formula.iter (fun c -> Clause.iter (fun l -> in_b.(Lit.var l) <- true) c) b;
  let g = Aig.create ~num_inputs:num_vars in
  let lit_of_cnf_lit l = Lit.apply_sign (Aig.input g (Lit.var l)) ~neg:(Lit.is_neg l) in
  let itp : (R.id, Lit.t) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun id ->
      let value =
        match R.node proof id with
        | R.Leaf { assumption = true; _ } ->
          raise (Partition_error (Printf.sprintf "leaf %d is an assumption" id))
        | R.Leaf { clause; assumption = false } ->
          if Formula.mem a clause then
            (* disjunction of the clause's B-variable literals *)
            Aig.or_list g
              (Clause.fold
                 (fun acc l -> if in_b.(Lit.var l) then lit_of_cnf_lit l :: acc else acc)
                 [] clause)
          else if Formula.mem b clause then Lit.true_
          else
            raise
              (Partition_error
                 (Printf.sprintf "leaf clause %s is in neither partition"
                    (Clause.to_dimacs_string clause)))
        | R.Chain { antecedents; pivots; _ } ->
          let acc = ref (Hashtbl.find itp antecedents.(0)) in
          Array.iteri
            (fun i pivot ->
              let rhs = Hashtbl.find itp antecedents.(i + 1) in
              acc :=
                if in_b.(pivot) then Aig.and_ g !acc rhs else Aig.or_ g !acc rhs)
            pivots;
          !acc
      in
      Hashtbl.replace itp id value)
    (R.reachable proof ~root);
  Aig.add_output g (Hashtbl.find itp root);
  g
