(** Craig interpolation from resolution refutations (McMillan's
    labelling).

    Given a refutation of [A ∧ B], an interpolant is a formula [I]
    with [A ⊨ I], [I ∧ B] unsatisfiable, and [vars(I)] contained in
    the variables shared by [A] and [B].  Interpolants are the premier
    downstream consumer of the resolution proofs this project emits:
    model checkers extract them from equivalence/BMC refutations as
    over-approximate image operators.

    The interpolant is returned as an AIG whose primary input [i]
    stands for CNF variable [i], so circuit tooling (simulation,
    strashing, {!Aig.Cone.support}) applies directly. *)

exception Partition_error of string

(** [compute proof ~root ~a ~b] labels every leaf clause of the
    refutation as an A-leaf (member of [a]) or B-leaf (member of [b];
    checked in that order when a clause is in both) and applies
    McMillan's rules: A-leaves yield the disjunction of their
    B-variable literals, B-leaves yield true; resolutions on A-local
    pivots disjoin, all others conjoin.

    @raise Partition_error if a leaf is in neither formula, or an
    assumption leaf survives in the cone.
    @raise Invalid_argument if [root]'s clause is not empty. *)
val compute :
  Resolution.t -> root:Resolution.id -> a:Cnf.Formula.t -> b:Cnf.Formula.t -> Aig.t
