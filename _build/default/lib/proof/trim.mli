(** Proof trimming: extracting the cone of the refutation.

    Solvers log a chain for {e every} learned clause, but only a
    fraction of them feed the final empty clause.  Trimming rebuilds a
    proof containing exactly the reachable nodes — the standard
    post-processing step before shipping a certificate. *)

(** [cone proof ~root] is a fresh proof holding only the nodes
    reachable from [root], and the root's id there. *)
val cone : Resolution.t -> root:Resolution.id -> Resolution.t * Resolution.id

(** Nodes reachable from [root] vs. nodes in the whole store
    (reachable, total). *)
val sizes : Resolution.t -> root:Resolution.id -> int * int
