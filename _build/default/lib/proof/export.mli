(** Textual proof formats.

    [trace] is a zChaff/TraceCheck-style format, one node per line:

    {v
    <id> L <lit> ... <lit> 0            (input clause)
    <id> A <lit> ... <lit> 0            (assumption leaf)
    <id> C <ante> [<pivot> <ante>]... 0 <lit> ... <lit> 0
    v}

    Literals are DIMACS integers.  Node ids and pivot variables are
    printed 1-based (like DIMACS variables) so that 0 is unambiguously
    a terminator.  [drup] emits
    the derived clauses in order, ending with the empty clause — the
    lemma stream a DRUP checker consumes (resolution information is
    dropped). *)

val trace_to_string : Resolution.t -> root:Resolution.id -> string
val drup_to_string : Resolution.t -> root:Resolution.id -> string

(** Parse the [trace] format back (ids are renumbered densely).
    @raise Failure on malformed input. *)
val trace_of_string : string -> Resolution.t * Resolution.id

(** Graphviz rendering of the sub-DAG rooted at [root]: leaves as
    boxes (assumptions dashed), chains as ellipses labelled with their
    clauses, edges labelled with pivot variables.  For inspecting small
    proofs: [dot -Tsvg proof.dot]. *)
val dot_to_string : Resolution.t -> root:Resolution.id -> string
