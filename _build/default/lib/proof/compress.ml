module Clause = Cnf.Clause
module R = Resolution

let share proof ~root =
  let dst = R.create () in
  let by_clause : (Clause.t, R.id) Hashtbl.t = Hashtbl.create 256 in
  let map : (R.id, R.id) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun id ->
      let dst_id =
        match R.node proof id with
        | R.Leaf { clause; assumption = true } ->
          (* Assumption leaves are never shared: substituting them by a
             derivation (or vice versa) would change what Lift removes. *)
          R.add_leaf ~assumption:true dst clause
        | R.Leaf { clause; assumption = false } -> (
          match Hashtbl.find_opt by_clause clause with
          | Some existing -> existing
          | None ->
            let fresh = R.add_leaf dst clause in
            Hashtbl.replace by_clause clause fresh;
            fresh)
        | R.Chain { clause; antecedents; pivots } -> (
          match Hashtbl.find_opt by_clause clause with
          | Some existing -> existing
          | None ->
            let antecedents = Array.map (Hashtbl.find map) antecedents in
            let fresh = R.add_chain dst ~clause ~antecedents ~pivots in
            Hashtbl.replace by_clause clause fresh;
            fresh)
      in
      Hashtbl.replace map id dst_id)
    (R.reachable proof ~root);
  (dst, Hashtbl.find map root)

let sharing_gain proof ~root =
  let shared, shared_root = share proof ~root in
  let kept = Array.length (R.reachable shared ~root:shared_root) in
  let original = Array.length (R.reachable proof ~root) in
  (kept, original)
