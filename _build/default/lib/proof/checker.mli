(** Independent validation of resolution proofs.

    The checker re-derives every chain with {!Cnf.Clause.resolve} and
    compares against the stored clause, and optionally validates that
    every leaf in the cone of the root belongs to a given formula.
    It shares no code with the solver's proof logging, which is the
    point: a bug in logging cannot also hide in checking. *)

type error = {
  node_id : Resolution.id;
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

(** [check proof ~root ~formula] validates the sub-DAG rooted at
    [root]:
    - every chain resolves to exactly its stored clause;
    - the root's clause is empty (a refutation);
    - no assumption leaves remain in the cone;
    - when [formula] is given, every leaf clause is a member of it.

    Returns the number of chain nodes verified. *)
val check :
  Resolution.t -> root:Resolution.id -> ?formula:Cnf.Formula.t -> unit -> (int, error) result

(** [check_derivation proof ~root ~expected ~formula] is like {!check}
    but for lemma derivations: the root clause must {e subsume}
    [expected] rather than be empty. *)
val check_derivation :
  Resolution.t ->
  root:Resolution.id ->
  expected:Cnf.Clause.t ->
  ?formula:Cnf.Formula.t ->
  unit ->
  (int, error) result
