module Clause = Cnf.Clause
module Formula = Cnf.Formula

let of_proof formula proof ~root =
  (* Map clauses to their first index in the formula. *)
  let index = Hashtbl.create (Formula.num_clauses formula) in
  Formula.iteri
    (fun i c -> if not (Hashtbl.mem index c) then Hashtbl.add index c i)
    formula;
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun id ->
      match Resolution.node proof id with
      | Resolution.Leaf { clause; _ } -> (
        match Hashtbl.find_opt index clause with
        | Some i -> Hashtbl.replace seen i ()
        | None ->
          invalid_arg
            (Printf.sprintf "Core.of_proof: leaf clause %s not in the formula"
               (Clause.to_dimacs_string clause)))
      | Resolution.Chain _ -> ())
    (Resolution.reachable proof ~root);
  List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) seen [])

let minimize ~is_unsat formula core =
  let formula_of indices =
    let f = Formula.create () in
    Formula.ensure_vars f (Formula.num_vars formula);
    List.iter (fun i -> ignore (Formula.add f (Formula.clause formula i))) indices;
    f
  in
  (* Deletion-based: try dropping each clause in turn; keep it only if
     the rest stops being unsatisfiable. *)
  let rec loop kept = function
    | [] -> List.rev kept
    | i :: rest ->
      let candidate = List.rev_append kept rest in
      if is_unsat (formula_of candidate) then loop kept rest else loop (i :: kept) rest
  in
  loop [] core
