module Clause = Cnf.Clause
module R = Resolution

type error = { node_id : R.id; reason : string }

let pp_error fmt e = Format.fprintf fmt "proof node %d: %s" e.node_id e.reason

let error node_id fmt = Printf.ksprintf (fun reason -> Error { node_id; reason }) fmt

let check_cone proof ~root ~formula ~allow_assumptions =
  let order = R.reachable proof ~root in
  let chains = ref 0 in
  let rec loop i =
    if i >= Array.length order then Ok !chains
    else
      let id = order.(i) in
      match R.node proof id with
      | R.Leaf { clause; assumption } ->
        if assumption && not allow_assumptions then
          error id "assumption leaf in a final proof"
        else begin
          match formula with
          | Some f when (not assumption) && not (Cnf.Formula.mem f clause) ->
            error id "leaf clause %s is not in the formula" (Clause.to_dimacs_string clause)
          | Some _ | None -> loop (i + 1)
        end
      | R.Chain { clause; antecedents; pivots } -> (
        match R.recompute_chain proof ~antecedents ~pivots with
        | derived ->
          if Clause.equal derived clause then begin
            incr chains;
            loop (i + 1)
          end
          else
            error id "chain derives %s but claims %s" (Clause.to_dimacs_string derived)
              (Clause.to_dimacs_string clause)
        | exception Invalid_argument msg -> error id "invalid resolution step: %s" msg)
  in
  loop 0

let check proof ~root ?formula () =
  if not (Clause.is_empty (R.clause_of proof root)) then
    error root "root clause is not empty"
  else check_cone proof ~root ~formula ~allow_assumptions:false

let check_derivation proof ~root ~expected ?formula () =
  let derived = R.clause_of proof root in
  if not (Clause.subsumes derived expected) then
    error root "derived clause %s does not subsume expected %s"
      (Clause.to_dimacs_string derived) (Clause.to_dimacs_string expected)
  else check_cone proof ~root ~formula ~allow_assumptions:false
