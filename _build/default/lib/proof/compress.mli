(** Proof compression by derivation sharing.

    Different SAT calls (and different restarts of one call) often
    re-derive the same clause.  [share] rebuilds the cone of a root so
    that each distinct clause is derived exactly once: the first
    derivation encountered in topological order is kept, later ones are
    replaced by references to it.  The result proves the same root
    clause from a subset of the same leaves and still checks with
    {!Checker}. *)

(** [share proof ~root] is the shared-cone proof and its root. *)
val share : Resolution.t -> root:Resolution.id -> Resolution.t * Resolution.id

(** Nodes in the shared cone vs. nodes in the original cone. *)
val sharing_gain : Resolution.t -> root:Resolution.id -> int * int
