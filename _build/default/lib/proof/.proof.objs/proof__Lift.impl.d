lib/proof/lift.ml: Aig Array Cnf Hashtbl List Printf Resolution
