lib/proof/rup.mli: Cnf Format
