lib/proof/compress.ml: Array Cnf Hashtbl Resolution
