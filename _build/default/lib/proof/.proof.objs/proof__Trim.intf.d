lib/proof/trim.mli: Resolution
