lib/proof/rup.ml: Aig Cnf Format Hashtbl List Printf String
