lib/proof/core.mli: Cnf Resolution
