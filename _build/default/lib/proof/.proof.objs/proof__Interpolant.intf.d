lib/proof/interpolant.mli: Aig Cnf Resolution
