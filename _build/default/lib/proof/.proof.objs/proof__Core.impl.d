lib/proof/core.ml: Array Cnf Hashtbl List Printf Resolution
