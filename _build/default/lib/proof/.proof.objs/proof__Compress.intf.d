lib/proof/compress.mli: Resolution
