lib/proof/checker.ml: Array Cnf Format Printf Resolution
