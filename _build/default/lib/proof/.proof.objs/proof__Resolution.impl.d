lib/proof/resolution.ml: Aig Array Cnf Format Hashtbl Support
