lib/proof/proof.ml: Checker Compress Core Export Interpolant Lift Pstats Resolution Rup Trim
