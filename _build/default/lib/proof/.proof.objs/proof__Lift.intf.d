lib/proof/lift.mli: Cnf Resolution
