lib/proof/interpolant.ml: Aig Array Cnf Hashtbl Printf Resolution
