lib/proof/pstats.mli: Format Resolution
