lib/proof/checker.mli: Cnf Format Resolution
