lib/proof/pstats.ml: Array Cnf Format Fun List Resolution
