lib/proof/resolution.mli: Cnf Format
