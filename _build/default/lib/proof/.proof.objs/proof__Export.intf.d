lib/proof/export.mli: Resolution
