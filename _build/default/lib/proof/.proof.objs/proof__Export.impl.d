lib/proof/export.ml: Aig Array Buffer Cnf Hashtbl List Printf Resolution String
