lib/proof/trim.ml: Array Resolution
