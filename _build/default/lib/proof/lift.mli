(** Assumption lifting: turning a refutation of [F ∧ a1 ∧ ... ∧ ak]
    into a derivation, from [F] alone, of a clause subsuming
    [(¬a1 ∨ ... ∨ ¬ak)].

    This is the step that converts each SAT-sweeping query ("assume
    node [x] is 1 and node [y] is 0; derive ⊥") into an {e equivalence
    lemma clause} [(¬x ∨ y)] proved from the miter CNF, which later
    queries may use as an input clause — the paper's proof-stitching
    mechanism.

    The transformation replays every chain in the cone of the
    refutation, skipping resolutions against assumption-unit leaves
    (which re-introduces the negated assumption literal and lets it
    propagate to the root) and dropping steps that have become
    redundant.  With CDCL-produced proofs the replay never creates a
    tautology: a literal satisfied at level 0 cannot occur in any
    conflict or reason clause. *)

exception Lift_error of string

(** [refutation proof ~root] rewrites (inside [proof]) the refutation
    rooted at [root], eliminating every assumption leaf, and returns
    the new root and its clause (a sub-clause of the negated
    assumptions).  Nodes that need no change are reused, so the result
    shares structure with the original.
    @raise Lift_error if [root] is not an empty clause, or if replay
    encounters a malformed step. *)
val refutation : Resolution.t -> root:Resolution.id -> Resolution.id * Cnf.Clause.t
