(** Unsatisfiable cores from resolution proofs.

    The leaves of a refutation are an unsatisfiable subset of the
    formula — a {e core}.  Cores from a single proof are usually not
    minimal; {!minimize} shrinks one by deletion probing (re-solving
    without one clause at a time), yielding a minimal unsatisfiable
    subset (MUS) when the prover is complete.

    The proof library cannot depend on the SAT solver (the dependency
    runs the other way), so minimization is parameterized by an
    [is_unsat] oracle — pass [Sat]'s solver, or any other decision
    procedure. *)

(** Clause indices (into the formula) of the refutation's leaves.
    @raise Invalid_argument if a leaf clause is not in the formula. *)
val of_proof : Cnf.Formula.t -> Resolution.t -> root:Resolution.id -> int list

(** [minimize ~is_unsat formula core] repeatedly drops clauses that are
    not needed for unsatisfiability.  [core] is a list of clause
    indices (into [formula]) whose conjunction is unsatisfiable; the
    result is a subset with the same property.  [is_unsat] receives a
    candidate sub-formula; if it is incomplete (budgeted) and answers
    [false] conservatively, the affected clauses are kept. *)
val minimize : is_unsat:(Cnf.Formula.t -> bool) -> Cnf.Formula.t -> int list -> int list
