module Sim = Aig.Sim
module Rng = Support.Rng

type t = {
  g : Aig.t;
  words : int;
  seed : int;
  mutable patterns : bool array list; (* newest first *)
  mutable repr : int array;
  mutable phase : bool array;
}

(* Signature of a node normalized for complement: if the first
   simulated bit is 1, the whole signature is complemented and the flip
   recorded, so a node and its negation land in the same class. *)
let normalized_signature values =
  let flip = Int64.logand values.(0) 1L = 1L in
  let key = if flip then Array.map Int64.lognot values else Array.copy values in
  (key, flip)

let recompute t =
  let n_cex = List.length t.patterns in
  let cex_words = (n_cex + 63) / 64 in
  let words = t.words + cex_words in
  let sim = Sim.create t.g ~words in
  Sim.randomize_inputs sim (Rng.create t.seed);
  (* Counterexample patterns occupy the trailing bits deterministically;
     list order (newest first) maps to descending bit positions. *)
  List.iteri
    (fun k pattern ->
      let bit = (t.words * 64) + k in
      Array.iteri (fun i v -> Sim.set_input_bit sim ~input:i ~bit v) pattern)
    t.patterns;
  Sim.run sim;
  let num_nodes = Aig.num_nodes t.g in
  let repr = Array.make num_nodes 0 in
  let phase = Array.make num_nodes false in
  let table = Hashtbl.create (2 * num_nodes) in
  for node = 0 to num_nodes - 1 do
    let key, flip = normalized_signature (Sim.node_values sim node) in
    match Hashtbl.find_opt table key with
    | Some (leader, leader_flip) ->
      repr.(node) <- leader;
      phase.(node) <- flip <> leader_flip
    | None ->
      Hashtbl.add table key (node, flip);
      repr.(node) <- node
  done;
  t.repr <- repr;
  t.phase <- phase

let create g ~words ~seed =
  if words <= 0 then invalid_arg "Simclass.create: words must be positive";
  let t = { g; words; seed; patterns = []; repr = [||]; phase = [||] } in
  recompute t;
  t

let graph t = t.g

let add_pattern t pattern =
  if Array.length pattern <> Aig.num_inputs t.g then
    invalid_arg "Simclass.add_pattern: wrong arity";
  t.patterns <- Array.copy pattern :: t.patterns;
  recompute t

let num_patterns t = List.length t.patterns

let candidate t n =
  let r = t.repr.(n) in
  if r = n then None else Some (r, t.phase.(n))

let leader t n = t.repr.(n)

let class_stats t =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun r -> Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r)))
    t.repr;
  Hashtbl.fold
    (fun _ count (classes, members) ->
      if count >= 2 then (classes + 1, members + count) else (classes, members))
    counts (0, 0)
