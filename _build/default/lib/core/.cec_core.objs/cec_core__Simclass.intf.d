lib/core/simclass.mli: Aig
