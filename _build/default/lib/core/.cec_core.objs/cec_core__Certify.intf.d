lib/core/certify.mli: Aig Cec Format Proof
