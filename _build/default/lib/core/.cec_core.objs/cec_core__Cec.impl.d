lib/core/cec.ml: Aig Array Cnf Proof Sat Sweep
