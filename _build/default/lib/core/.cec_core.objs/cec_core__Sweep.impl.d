lib/core/sweep.ml: Aig Array Cnf Hashtbl List Option Proof Sat Simclass
