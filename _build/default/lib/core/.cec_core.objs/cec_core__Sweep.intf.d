lib/core/sweep.mli: Aig Cnf Proof
