lib/core/certify.ml: Aig Cec Cnf Format Printf Proof
