lib/core/simclass.ml: Aig Array Hashtbl Int64 List Option Support
