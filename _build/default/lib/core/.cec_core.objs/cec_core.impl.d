lib/core/cec_core.ml: Cec Certify Simclass Sweep
