lib/core/cec.mli: Aig Cnf Proof Sweep
