(** Candidate-equivalence classes from random simulation.

    Nodes whose simulation signatures agree (up to complement) are
    candidates for being functionally equivalent; SAT settles each
    candidate, and counterexamples feed back as refinement patterns.
    The partition refines monotonically: two nodes separated by any
    stored pattern can never rejoin. *)

type t

(** [create g ~words ~seed] simulates [g] under [64*words] random
    patterns and builds the initial partition over {e all} nodes
    (constant, inputs and ANDs). *)
val create : Aig.t -> words:int -> seed:int -> t

val graph : t -> Aig.t

(** Add a counterexample input assignment and re-simulate (the random
    patterns are regenerated deterministically, so refinement is
    reproducible). *)
val add_pattern : t -> bool array -> unit

(** Number of stored counterexample patterns. *)
val num_patterns : t -> int

(** [candidate t n] is [Some (r, phase)] when node [n] shares its class
    with an earlier node [r] (the class leader): the simulations claim
    [n = r XOR phase].  [None] when [n] leads its own class. *)
val candidate : t -> int -> (int * bool) option

(** Class leader of a node ([n] itself when it leads). *)
val leader : t -> int -> int

(** Number of classes with at least two members, and total nodes in
    them (candidate-equivalence volume). *)
val class_stats : t -> int * int
