type error =
  | Proof_error of Proof.Checker.error
  | Formula_mismatch of string

let pp_error fmt = function
  | Proof_error e -> Proof.Checker.pp_error fmt e
  | Formula_mismatch msg -> Format.fprintf fmt "formula mismatch: %s" msg

let validate (cert : Cec.certificate) =
  match
    Proof.Checker.check cert.Cec.proof ~root:cert.Cec.root ~formula:cert.Cec.formula ()
  with
  | Ok chains -> Ok chains
  | Error e -> Error (Proof_error e)

let validate_against cert a b =
  let rebuilt = Cnf.Tseitin.miter_formula (Aig.Miter.build a b) in
  let claimed = cert.Cec.formula in
  if Cnf.Formula.num_clauses rebuilt <> Cnf.Formula.num_clauses claimed then
    Error
      (Formula_mismatch
         (Printf.sprintf "clause counts differ: rebuilt %d, certificate %d"
            (Cnf.Formula.num_clauses rebuilt)
            (Cnf.Formula.num_clauses claimed)))
  else begin
    let missing = ref None in
    Cnf.Formula.iter
      (fun c -> if !missing = None && not (Cnf.Formula.mem rebuilt c) then missing := Some c)
      claimed;
    match !missing with
    | Some c ->
      Error
        (Formula_mismatch
           (Printf.sprintf "certificate clause %s is not in the rebuilt miter CNF"
              (Cnf.Clause.to_dimacs_string c)))
    | None -> (
      (* Check the proof against the rebuilt formula, not the claimed
         one, so a forged certificate cannot smuggle leaves. *)
      match Proof.Checker.check cert.Cec.proof ~root:cert.Cec.root ~formula:rebuilt () with
      | Ok chains -> Ok chains
      | Error e -> Error (Proof_error e))
  end
