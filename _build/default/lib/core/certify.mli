(** Independent validation of equivalence certificates.

    A {!Cec.certificate} claims: "this resolution proof derives the
    empty clause from this CNF".  {!validate} re-checks every chain and
    the leaf set.  {!validate_against} goes further: it rebuilds the
    miter CNF from the two circuits and insists the certificate's
    formula is exactly it, closing the loop from circuits to proof. *)

type error =
  | Proof_error of Proof.Checker.error
  | Formula_mismatch of string

val pp_error : Format.formatter -> error -> unit

(** Check the proof against the certificate's own formula.  Returns the
    number of verified chains. *)
val validate : Cec.certificate -> (int, error) result

(** Check the proof against the miter CNF rebuilt from the circuits. *)
val validate_against : Cec.certificate -> Aig.t -> Aig.t -> (int, error) result
