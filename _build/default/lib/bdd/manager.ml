module Veci = Support.Veci

type node = int

exception Node_limit

type t = {
  num_vars : int;
  max_nodes : int;
  vars : Veci.t; (* variable index per node; -1 for terminals *)
  lows : Veci.t;
  highs : Veci.t;
  unique : (int * int * int, node) Hashtbl.t; (* (var, low, high) -> node *)
  and_cache : (int * int, node) Hashtbl.t;
  xor_cache : (int * int, node) Hashtbl.t;
  not_cache : (int, node) Hashtbl.t;
}

let zero = 0
let one = 1

let create ?(max_nodes = 1_000_000) ~num_vars () =
  if num_vars < 0 then invalid_arg "Manager.create: negative variable count";
  let t =
    {
      num_vars;
      max_nodes;
      vars = Veci.create ();
      lows = Veci.create ();
      highs = Veci.create ();
      unique = Hashtbl.create 4096;
      and_cache = Hashtbl.create 4096;
      xor_cache = Hashtbl.create 4096;
      not_cache = Hashtbl.create 1024;
    }
  in
  (* terminals 0 and 1 *)
  Veci.push t.vars (-1);
  Veci.push t.lows 0;
  Veci.push t.highs 0;
  Veci.push t.vars (-1);
  Veci.push t.lows 1;
  Veci.push t.highs 1;
  t

let num_vars t = t.num_vars
let size t = Veci.size t.vars
let var_of t n = Veci.get t.vars n
let low t n = Veci.get t.lows n
let high t n = Veci.get t.highs n
let is_terminal n = n < 2

(* Level of a node for the ordering: terminals sink to the bottom. *)
let level t n = if is_terminal n then max_int else var_of t n

let mk t v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt t.unique (v, lo, hi) with
    | Some n -> n
    | None ->
      if size t >= t.max_nodes then raise Node_limit;
      let n = size t in
      Veci.push t.vars v;
      Veci.push t.lows lo;
      Veci.push t.highs hi;
      Hashtbl.add t.unique (v, lo, hi) n;
      n

let var t i =
  if i < 0 || i >= t.num_vars then invalid_arg "Manager.var: out of range";
  mk t i zero one

let rec not_ t n =
  if n = zero then one
  else if n = one then zero
  else
    match Hashtbl.find_opt t.not_cache n with
    | Some r -> r
    | None ->
      let r = mk t (var_of t n) (not_ t (low t n)) (not_ t (high t n)) in
      Hashtbl.add t.not_cache n r;
      r

(* Shannon cofactor decomposition for binary operations. *)
let cofactors t n v =
  if is_terminal n || var_of t n <> v then (n, n) else (low t n, high t n)

let rec and_ t a b =
  if a = zero || b = zero then zero
  else if a = one then b
  else if b = one then a
  else if a = b then a
  else
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.and_cache key with
    | Some r -> r
    | None ->
      let v = min (level t a) (level t b) in
      let a0, a1 = cofactors t a v and b0, b1 = cofactors t b v in
      let r = mk t v (and_ t a0 b0) (and_ t a1 b1) in
      Hashtbl.add t.and_cache key r;
      r

let rec xor_ t a b =
  if a = b then zero
  else if a = zero then b
  else if b = zero then a
  else if a = one then not_ t b
  else if b = one then not_ t a
  else
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.xor_cache key with
    | Some r -> r
    | None ->
      let v = min (level t a) (level t b) in
      let a0, a1 = cofactors t a v and b0, b1 = cofactors t b v in
      let r = mk t v (xor_ t a0 b0) (xor_ t a1 b1) in
      Hashtbl.add t.xor_cache key r;
      r

let or_ t a b = not_ t (and_ t (not_ t a) (not_ t b))

let ite t c th el = or_ t (and_ t c th) (and_ t (not_ t c) el)

let rec eval t n assignment =
  if n = zero then false
  else if n = one then true
  else if assignment.(var_of t n) then eval t (high t n) assignment
  else eval t (low t n) assignment

let sat_count t n =
  let cache = Hashtbl.create 256 in
  (* fraction of assignments below a node, scaled at the end *)
  let rec density m =
    if m = zero then 0.0
    else if m = one then 1.0
    else
      match Hashtbl.find_opt cache m with
      | Some d -> d
      | None ->
        let d = 0.5 *. (density (low t m) +. density (high t m)) in
        Hashtbl.add cache m d;
        d
  in
  density n *. (2.0 ** float_of_int t.num_vars)

let any_sat t n =
  if n = zero then None
  else begin
    let assignment = Array.make t.num_vars false in
    let rec descend m =
      if m = one then ()
      else if low t m <> zero then begin
        assignment.(var_of t m) <- false;
        descend (low t m)
      end
      else begin
        assignment.(var_of t m) <- true;
        descend (high t m)
      end
    in
    descend n;
    Some assignment
  end

let support t n =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec visit m =
    if (not (is_terminal m)) && not (Hashtbl.mem seen m) then begin
      Hashtbl.add seen m ();
      Hashtbl.replace vars (var_of t m) ();
      visit (low t m);
      visit (high t m)
    end
  in
  visit n;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let of_aig ?order t g =
  if Aig.num_inputs g > t.num_vars then invalid_arg "Manager.of_aig: not enough variables";
  let order =
    match order with
    | Some o ->
      if Array.length o <> Aig.num_inputs g then invalid_arg "Manager.of_aig: bad order length";
      o
    | None -> Array.init (Aig.num_inputs g) Fun.id
  in
  let map = Array.make (Aig.num_nodes g) zero in
  for i = 0 to Aig.num_inputs g - 1 do
    map.(Aig.Lit.var (Aig.input g i)) <- var t order.(i)
  done;
  let node_of l =
    let n = map.(Aig.Lit.var l) in
    if Aig.Lit.is_neg l then not_ t n else n
  in
  Aig.iter_ands g (fun n ->
      map.(n) <- and_ t (node_of (Aig.fanin0 g n)) (node_of (Aig.fanin1 g n)));
  Array.map node_of (Aig.outputs g)
