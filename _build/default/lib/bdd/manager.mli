(** Reduced ordered binary decision diagrams (ROBDDs).

    A classic hash-consed BDD package: canonical by construction, so
    two functions over the same manager are equal iff their node
    identifiers are equal — which makes equivalence checking a pointer
    comparison once the outputs are built.  Variables are ordered by
    index (no dynamic reordering); a configurable node limit turns the
    well-known exponential blow-ups (e.g. multiplier outputs) into a
    clean {!Node_limit} exception instead of an OOM. *)

type t
(** A manager: node table, unique table and operation caches. *)

type node = int
(** Node identifier, valid within its manager. *)

exception Node_limit

(** [create ~num_vars ()] with an optional node cap (default 1,000,000).
    Operations raise {!Node_limit} when the cap is exceeded. *)
val create : ?max_nodes:int -> num_vars:int -> unit -> t

val num_vars : t -> int

(** Nodes allocated so far (including the two terminals). *)
val size : t -> int

val zero : node
val one : node

(** The function of variable [i].  @raise Invalid_argument if out of
    range. *)
val var : t -> int -> node

val not_ : t -> node -> node
val and_ : t -> node -> node -> node
val or_ : t -> node -> node -> node
val xor_ : t -> node -> node -> node
val ite : t -> node -> node -> node -> node

(** Structural accessors ([var_of] is [-1] for terminals). *)
val var_of : t -> node -> int

val low : t -> node -> node
val high : t -> node -> node

(** Evaluate under an assignment of all variables. *)
val eval : t -> node -> bool array -> bool

(** Number of satisfying assignments over all [num_vars] variables
    (as a float: counts overflow 62 bits quickly). *)
val sat_count : t -> node -> float

(** Some satisfying assignment, or [None] for [zero].  Unconstrained
    variables default to [false]. *)
val any_sat : t -> node -> bool array option

(** Variable indices the function depends on, ascending. *)
val support : t -> node -> int list

(** [of_aig t g] builds the BDD of every output of [g].  Input [i]
    maps to BDD variable [order.(i)] ([order] defaults to the
    identity; it must be injective into [0, num_vars)).
    @raise Invalid_argument when variable counts disagree;
    @raise Node_limit on blow-up. *)
val of_aig : ?order:int array -> t -> Aig.t -> node array
