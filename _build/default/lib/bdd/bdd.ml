(** Library interface: the ROBDD package and the BDD-based
    equivalence-checking baseline. *)

module Manager = Manager
module Equiv = Equiv
