lib/bdd/manager.ml: Aig Array Fun Hashtbl List Support
