lib/bdd/equiv.mli: Aig
