lib/bdd/manager.mli: Aig
