lib/bdd/equiv.ml: Aig Array Manager
