lib/bdd/bdd.ml: Equiv Manager
