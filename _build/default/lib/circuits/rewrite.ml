module Lit = Aig.Lit
module Rng = Support.Rng

(* Rebuild [g] into [fresh], mapping each AND node through [template],
   which receives the rebuilt fanins and the rebuilt node pool. *)
let rebuild g template =
  let fresh = Aig.create ~num_inputs:(Aig.num_inputs g) in
  let map = Array.make (Aig.num_nodes g) Lit.false_ in
  for i = 0 to Aig.num_inputs g - 1 do
    map.(1 + i) <- Aig.input fresh i
  done;
  let map_lit l = Lit.apply_sign map.(Lit.var l) ~neg:(Lit.is_neg l) in
  Aig.iter_ands g (fun n ->
      let x = map_lit (Aig.fanin0 g n) and y = map_lit (Aig.fanin1 g n) in
      map.(n) <- template fresh n x y);
  Array.iter (fun l -> Aig.add_output fresh (map_lit l)) (Aig.outputs g);
  fresh

let restructure ?(intensity = 0.5) rng g =
  if intensity < 0.0 || intensity > 1.0 then
    invalid_arg "Rewrite.restructure: intensity must be within [0, 1]";
  (* Pool of already-rebuilt literals for the consensus template. *)
  let pool = ref [] in
  let pick_pool fresh =
    match !pool with
    | [] -> Aig.input fresh (Rng.int rng (Aig.num_inputs fresh))
    | pool ->
      let arr = Array.of_list pool in
      arr.(Rng.int rng (Array.length arr))
  in
  let template fresh _n x y =
    let result =
      if Rng.float rng >= intensity then Aig.and_ fresh x y
      else
        match Rng.int rng 4 with
        | 0 ->
          (* (x∧y) ∧ (x∨y) *)
          Aig.and_ fresh (Aig.and_ fresh x y) (Aig.or_ fresh x y)
        | 1 ->
          (* x ∧ ¬(x∧¬y) *)
          Aig.and_ fresh x (Lit.neg (Aig.and_ fresh x (Lit.neg y)))
        | 2 ->
          (* y ∧ ¬(y∧¬x) *)
          Aig.and_ fresh y (Lit.neg (Aig.and_ fresh y (Lit.neg x)))
        | _ ->
          (* absorption: p ∨ (p∧z) = p *)
          let p = Aig.and_ fresh x y in
          let z = pick_pool fresh in
          Aig.or_ fresh p (Aig.and_ fresh p z)
    in
    if not (Lit.is_const result) then pool := result :: !pool;
    result
  in
  rebuild g template

let rebalance mode g =
  let fresh = Aig.create ~num_inputs:(Aig.num_inputs g) in
  let map = Array.make (Aig.num_nodes g) Lit.false_ in
  for i = 0 to Aig.num_inputs g - 1 do
    map.(1 + i) <- Aig.input fresh i
  done;
  let map_lit l = Lit.apply_sign map.(Lit.var l) ~neg:(Lit.is_neg l) in
  (* Leaves of the maximal AND tree rooted at node [n]: follow
     non-complemented fanin edges into AND nodes. *)
  let rec leaves l acc =
    if Lit.is_neg l || not (Aig.is_and_node g (Lit.var l)) then map_lit l :: acc
    else
      let n = Lit.var l in
      leaves (Aig.fanin0 g n) (leaves (Aig.fanin1 g n) acc)
  in
  Aig.iter_ands g (fun n ->
      let lits = leaves (Aig.fanin0 g n) (leaves (Aig.fanin1 g n) []) in
      map.(n) <-
        (match mode with
        | `Balanced -> Aig.and_list fresh lits
        | `Left -> (
          match lits with
          | [] -> Lit.true_
          | first :: rest -> List.fold_left (Aig.and_ fresh) first rest)));
  Array.iter (fun l -> Aig.add_output fresh (map_lit l)) (Aig.outputs g);
  fresh

let double_negate g =
  let counter = ref 0 in
  let template fresh _n x y =
    incr counter;
    if !counter mod 3 = 0 then
      let p = Aig.and_ fresh x y in
      Aig.and_ fresh p (Aig.or_ fresh p (Lit.neg x))
    else Aig.and_ fresh x y
  in
  rebuild g template
