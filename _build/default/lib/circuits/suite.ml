type case = {
  name : string;
  golden : unit -> Aig.t;
  revised : unit -> Aig.t;
}

let restructured ?(seed = 7) ?(intensity = 0.5) make () =
  Rewrite.restructure ~intensity (Support.Rng.create seed) (make ())

let case name golden revised = { name; golden; revised }

let small =
  [
    case "add4-rc-cla" (fun () -> Adder.ripple_carry 4) (fun () -> Adder.carry_lookahead 4);
    case "add8-rc-rewr" (fun () -> Adder.ripple_carry 8)
      (restructured (fun () -> Adder.ripple_carry 8));
    case "mul3-arr-sa" (fun () -> Multiplier.array 3) (fun () -> Multiplier.shift_add 3);
    case "eq8-tree-lin" (fun () -> Datapath.equality ~tree:true 8)
      (fun () -> Datapath.equality ~tree:false 8);
    case "par16-tree-lin" (fun () -> Datapath.parity ~tree:true 16)
      (fun () -> Datapath.parity ~tree:false 16);
  ]

let default =
  small
  @ [
      case "add8-rc-cla" (fun () -> Adder.ripple_carry 8) (fun () -> Adder.carry_lookahead 8);
      case "add16-rc-cla" (fun () -> Adder.ripple_carry 16) (fun () -> Adder.carry_lookahead 16);
      case "add16-rc-csel" (fun () -> Adder.ripple_carry 16) (fun () -> Adder.carry_select 16);
      case "add32-rc-rewr" (fun () -> Adder.ripple_carry 32)
        (restructured (fun () -> Adder.ripple_carry 32));
      case "mul4-arr-sa" (fun () -> Multiplier.array 4) (fun () -> Multiplier.shift_add 4);
      case "mul5-arr-rewr" (fun () -> Multiplier.array 5)
        (restructured (fun () -> Multiplier.array 5));
      case "mul6-sa-rebal" (fun () -> Multiplier.shift_add 6)
        (fun () -> Rewrite.rebalance `Balanced (Multiplier.shift_add 6));
      case "alu8-rewr" (fun () -> Datapath.alu 8) (restructured (fun () -> Datapath.alu 8));
      case "lt16-rewr" (fun () -> Datapath.less_than 16)
        (restructured ~intensity:0.8 (fun () -> Datapath.less_than 16));
      case "mux5-rewr" (fun () -> Datapath.mux_tree 5)
        (restructured (fun () -> Datapath.mux_tree 5));
      case "rand300-rewr"
        (fun () ->
          Random_aig.generate (Support.Rng.create 11) ~num_inputs:16 ~num_ands:300 ~num_outputs:8)
        (restructured ~seed:13
           (fun () ->
             Random_aig.generate (Support.Rng.create 11) ~num_inputs:16 ~num_ands:300
               ~num_outputs:8));
      case "add16-ks-bk" (fun () -> Prefix_adder.kogge_stone 16)
        (fun () -> Prefix_adder.brent_kung 16);
      case "add24-rc-skl" (fun () -> Adder.ripple_carry 24) (fun () -> Prefix_adder.sklansky 24);
      case "add32-ks-rc" (fun () -> Prefix_adder.kogge_stone 32) (fun () -> Adder.ripple_carry 32);
      case "mul4-booth-arr" (fun () -> Booth.radix4 4) (fun () -> Multiplier.array 4);
      case "mul5-booth-sa" (fun () -> Booth.radix4 5) (fun () -> Multiplier.shift_add 5);
      case "bshift4-rewr" (fun () -> Misc_logic.barrel_shifter 4)
        (restructured (fun () -> Misc_logic.barrel_shifter 4));
      case "prio24-rewr" (fun () -> Misc_logic.priority_encoder 24)
        (restructured ~intensity:0.7 (fun () -> Misc_logic.priority_encoder 24));
      case "gray16-id"
        (fun () ->
          (* gray(binary(x)) vs identity: composes two converters *)
          let g = Aig.create ~num_inputs:16 in
          let inputs = Array.init 16 (Aig.input g) in
          Array.iter (Aig.add_output g) inputs;
          g)
        (fun () ->
          let to_gray = Misc_logic.binary_to_gray 16 in
          let g = Aig.create ~num_inputs:16 in
          let inputs = Array.init 16 (Aig.input g) in
          let gray = Aig.append g to_gray ~inputs in
          let back = Aig.append g (Misc_logic.gray_to_binary 16) ~inputs:gray in
          Array.iter (Aig.add_output g) back;
          g);
      case "maj3x8-rewr" (fun () -> Misc_logic.majority3 8)
        (restructured (fun () -> Misc_logic.majority3 8));
    ]

(* Cases that take seconds per engine: used only by the hard-instance
   experiment (T2h), not by the per-suite sweeps. *)
let hard =
  [
    case "mul6-booth-arr" (fun () -> Booth.radix4 6) (fun () -> Multiplier.array 6);
    case "mul7-booth-rewr" (fun () -> Booth.radix4 7)
      (restructured ~seed:3 (fun () -> Booth.radix4 7));
  ]

let find name = List.find_opt (fun c -> c.name = name) (default @ hard)
let names cases = List.map (fun c -> c.name) cases
let miter_of c = Aig.Miter.build (c.golden ()) (c.revised ())
