(** Function-preserving structural rewrites.

    Equivalence checking is only interesting on pairs of circuits that
    compute the same function with different structure.  These
    transforms manufacture such pairs: each rewrites a graph into a
    functionally identical one whose AND structure differs node by
    node, which is exactly what a synthesis tool's optimizations do to
    a golden netlist. *)

(** [restructure rng ~intensity g] rebuilds [g], replacing each AND
    with probability [intensity] (0..1, default 0.5) by a random
    equivalent template:
    [x∧y = (x∧y)∧(x∨y) = x∧¬(x∧¬y) = (x∧y)∨((x∧y)∧z)].
    The result has the same inputs/outputs and the same functions. *)
val restructure : ?intensity:float -> Support.Rng.t -> Aig.t -> Aig.t

(** Reassociate maximal AND trees.  [`Left] produces a linear chain,
    [`Balanced] a balanced tree; both change structure without changing
    functions. *)
val rebalance : [ `Left | `Balanced ] -> Aig.t -> Aig.t

(** [double_negate g] rewrites every AND via De Morgan templates that
    survive structural hashing: [x∧y = ¬(¬x∨¬y)] is a no-op in an AIG,
    so this instead interposes [x∧y = (x∧y)∧(x∧y ∨ ¬x)]-style padding
    on a fixed fraction of nodes — a cheap deterministic variant of
    {!restructure} used where no generator state is wanted. *)
val double_negate : Aig.t -> Aig.t
