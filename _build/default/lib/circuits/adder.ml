module Lit = Aig.Lit

let inputs g n =
  let a = Array.init n (Aig.input g) in
  let b = Array.init n (fun i -> Aig.input g (n + i)) in
  (a, b)

let full_adder g a b cin =
  let axb = Aig.xor_ g a b in
  let sum = Aig.xor_ g axb cin in
  let carry = Aig.or_ g (Aig.and_ g a b) (Aig.and_ g axb cin) in
  (sum, carry)

let ripple_carry n =
  if n <= 0 then invalid_arg "Adder.ripple_carry: width must be positive";
  let g = Aig.create ~num_inputs:(2 * n) in
  let a, b = inputs g n in
  let carry = ref Lit.false_ in
  for i = 0 to n - 1 do
    let sum, cout = full_adder g a.(i) b.(i) !carry in
    Aig.add_output g sum;
    carry := cout
  done;
  Aig.add_output g !carry;
  g

let carry_lookahead n =
  if n <= 0 then invalid_arg "Adder.carry_lookahead: width must be positive";
  let g = Aig.create ~num_inputs:(2 * n) in
  let a, b = inputs g n in
  let gen = Array.init n (fun i -> Aig.and_ g a.(i) b.(i)) in
  let prop = Array.init n (fun i -> Aig.xor_ g a.(i) b.(i)) in
  (* carry.(i) = carry INTO bit i:
     c0 = 0; c(i+1) = g(i) OR (p(i) AND c(i)) expanded into a flat sum
     of products g(j) AND p(j+1) AND ... AND p(i). *)
  let carry = Array.make (n + 1) Lit.false_ in
  for i = 0 to n - 1 do
    let terms = ref [] in
    for j = 0 to i do
      let term = ref gen.(j) in
      for k = j + 1 to i do
        term := Aig.and_ g !term prop.(k)
      done;
      terms := !term :: !terms
    done;
    carry.(i + 1) <- Aig.or_list g !terms
  done;
  for i = 0 to n - 1 do
    Aig.add_output g (Aig.xor_ g prop.(i) carry.(i))
  done;
  Aig.add_output g carry.(n);
  g

let carry_select ?(block = 4) n =
  if n <= 0 then invalid_arg "Adder.carry_select: width must be positive";
  if block <= 0 then invalid_arg "Adder.carry_select: block must be positive";
  let g = Aig.create ~num_inputs:(2 * n) in
  let a, b = inputs g n in
  (* Each block is computed twice (carry-in 0 and 1) with ripple
     chains; a mux picks the live version. *)
  let sums = Array.make n Lit.false_ in
  let carry = ref Lit.false_ in
  let i = ref 0 in
  while !i < n do
    let len = min block (n - !i) in
    let run cin =
      let c = ref cin in
      let out = Array.make len Lit.false_ in
      for k = 0 to len - 1 do
        let sum, cout = full_adder g a.(!i + k) b.(!i + k) !c in
        out.(k) <- sum;
        c := cout
      done;
      (out, !c)
    in
    let out0, c0 = run Lit.false_ in
    let out1, c1 = run Lit.true_ in
    for k = 0 to len - 1 do
      sums.(!i + k) <- Aig.mux g ~sel:!carry ~t:out1.(k) ~e:out0.(k)
    done;
    carry := Aig.mux g ~sel:!carry ~t:c1 ~e:c0;
    i := !i + len
  done;
  Array.iter (Aig.add_output g) sums;
  Aig.add_output g !carry;
  g
