module Lit = Aig.Lit

let partial_products g a b n =
  Array.init n (fun i -> Array.init n (fun j -> Aig.and_ g a.(j) b.(i)))

let full_adder g x y z =
  let xy = Aig.xor_ g x y in
  (Aig.xor_ g xy z, Aig.or_ g (Aig.and_ g x y) (Aig.and_ g xy z))

let half_adder g x y = (Aig.xor_ g x y, Aig.and_ g x y)

(* Column-wise carry-save reduction: every column's bits are compressed
   with 3:2 and 2:2 counters until one bit remains, carries feeding the
   next column. *)
let array n =
  if n <= 0 then invalid_arg "Multiplier.array: width must be positive";
  let g = Aig.create ~num_inputs:(2 * n) in
  let a = Array.init n (Aig.input g) in
  let b = Array.init n (fun i -> Aig.input g (n + i)) in
  let pp = partial_products g a b n in
  let columns = Array.make (2 * n) [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      columns.(i + j) <- pp.(i).(j) :: columns.(i + j)
    done
  done;
  for c = 0 to (2 * n) - 1 do
    let rec reduce = function
      | [] -> Aig.add_output g Lit.false_
      | [ bit ] -> Aig.add_output g bit
      | [ x; y ] ->
        let sum, carry = half_adder g x y in
        if c + 1 < 2 * n then columns.(c + 1) <- carry :: columns.(c + 1);
        reduce [ sum ]
      | x :: y :: z :: rest ->
        let sum, carry = full_adder g x y z in
        if c + 1 < 2 * n then columns.(c + 1) <- carry :: columns.(c + 1);
        reduce (sum :: rest)
    in
    reduce columns.(c)
  done;
  g

let shift_add n =
  if n <= 0 then invalid_arg "Multiplier.shift_add: width must be positive";
  let g = Aig.create ~num_inputs:(2 * n) in
  let a = Array.init n (Aig.input g) in
  let b = Array.init n (fun i -> Aig.input g (n + i)) in
  let acc = Array.make (2 * n) Lit.false_ in
  for i = 0 to n - 1 do
    let carry = ref Lit.false_ in
    for j = 0 to n - 1 do
      let addend = Aig.and_ g a.(j) b.(i) in
      let sum, cout = full_adder g acc.(i + j) addend !carry in
      acc.(i + j) <- sum;
      carry := cout
    done;
    let k = ref (i + n) in
    while !carry <> Lit.false_ && !k < 2 * n do
      let sum, cout = half_adder g acc.(!k) !carry in
      acc.(!k) <- sum;
      carry := cout;
      incr k
    done
  done;
  Array.iter (Aig.add_output g) acc;
  g
