lib/circuits/random_aig.mli: Aig Support
