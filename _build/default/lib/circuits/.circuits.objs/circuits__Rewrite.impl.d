lib/circuits/rewrite.ml: Aig Array List Support
