lib/circuits/datapath.mli: Aig
