lib/circuits/multiplier.mli: Aig
