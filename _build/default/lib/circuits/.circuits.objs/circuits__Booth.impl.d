lib/circuits/booth.ml: Aig Array
