lib/circuits/misc_logic.ml: Aig Array
