lib/circuits/multiplier.ml: Aig Array
