lib/circuits/datapath.ml: Aig Array List
