lib/circuits/random_aig.ml: Aig Array List Support
