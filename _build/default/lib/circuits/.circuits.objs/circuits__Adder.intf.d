lib/circuits/adder.mli: Aig
