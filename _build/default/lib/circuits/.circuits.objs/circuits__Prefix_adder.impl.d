lib/circuits/prefix_adder.ml: Aig Array
