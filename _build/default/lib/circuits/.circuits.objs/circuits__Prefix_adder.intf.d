lib/circuits/prefix_adder.mli: Aig
