lib/circuits/circuits.ml: Adder Booth Counters Datapath Misc_logic Multiplier Prefix_adder Random_aig Rewrite Suite
