lib/circuits/adder.ml: Aig Array
