lib/circuits/rewrite.mli: Aig Support
