lib/circuits/suite.ml: Adder Aig Array Booth Datapath List Misc_logic Multiplier Prefix_adder Random_aig Rewrite Support
