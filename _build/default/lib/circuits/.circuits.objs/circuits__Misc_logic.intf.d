lib/circuits/misc_logic.mli: Aig
