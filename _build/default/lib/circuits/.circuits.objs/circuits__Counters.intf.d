lib/circuits/counters.mli: Aig
