lib/circuits/booth.mli: Aig
