lib/circuits/counters.ml: Aig Array List
