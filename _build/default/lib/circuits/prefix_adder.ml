module Lit = Aig.Lit

(* The carry-prefix semigroup: (g, p) o (g', p') = (g or (p and g'),
   p and p'), where (g', p') is the less significant block. *)
let combine g (gh, ph) (gl, pl) =
  (Aig.or_ g gh (Aig.and_ g ph gl), Aig.and_ g ph pl)

let build n prefix_network =
  if n <= 0 then invalid_arg "Prefix_adder: width must be positive";
  let g = Aig.create ~num_inputs:(2 * n) in
  let a = Array.init n (Aig.input g) in
  let b = Array.init n (fun i -> Aig.input g (n + i)) in
  let gen = Array.init n (fun i -> Aig.and_ g a.(i) b.(i)) in
  let prop = Array.init n (fun i -> Aig.xor_ g a.(i) b.(i)) in
  (* gp.(i) will become the prefix over bits [0..i]. *)
  let gp = Array.init n (fun i -> (gen.(i), prop.(i))) in
  prefix_network g gp;
  (* carry into bit i: c0 = 0, c(i) = G(i-1). *)
  let carry i = if i = 0 then Lit.false_ else fst gp.(i - 1) in
  for i = 0 to n - 1 do
    Aig.add_output g (Aig.xor_ g prop.(i) (carry i))
  done;
  Aig.add_output g (carry n);
  g

let kogge_stone n =
  build n (fun g gp ->
      let n = Array.length gp in
      let d = ref 1 in
      while !d < n do
        for i = n - 1 downto !d do
          gp.(i) <- combine g gp.(i) gp.(i - !d)
        done;
        d := 2 * !d
      done)

let brent_kung n =
  build n (fun g gp ->
      let n = Array.length gp in
      (* up-sweep *)
      let d = ref 1 in
      while !d < n do
        let i = ref ((2 * !d) - 1) in
        while !i < n do
          gp.(!i) <- combine g gp.(!i) gp.(!i - !d);
          i := !i + (2 * !d)
        done;
        d := 2 * !d
      done;
      (* down-sweep *)
      d := !d / 2;
      while !d >= 1 do
        let i = ref ((3 * !d) - 1) in
        while !i < n do
          gp.(!i) <- combine g gp.(!i) gp.(!i - !d);
          i := !i + (2 * !d)
        done;
        d := !d / 2
      done)

let sklansky n =
  build n (fun g gp ->
      let n = Array.length gp in
      let d = ref 1 in
      while !d < n do
        (* For each block of size 2d, combine the upper-half entries
           with the top of the lower half. *)
        let base = ref 0 in
        while !base + !d < n do
          let src = !base + !d - 1 in
          for i = !base + !d to min (n - 1) (!base + (2 * !d) - 1) do
            gp.(i) <- combine g gp.(i) gp.(src)
          done;
          base := !base + (2 * !d)
        done;
        d := 2 * !d
      done)
