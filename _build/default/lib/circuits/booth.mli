(** Radix-4 Booth multiplier (unsigned operands).

    Interface matches {!Multiplier}: inputs [a0..a(n-1) b0..b(n-1)],
    outputs the [2n]-bit product.  Booth recoding halves the number of
    partial products relative to the array multiplier and produces a
    very different internal structure — the hardest of the built-in
    equivalence pairs. *)

val radix4 : int -> Aig.t
