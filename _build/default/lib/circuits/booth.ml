module Lit = Aig.Lit

(* W-bit two's-complement helpers (modular arithmetic). *)
let add_vec g x y cin =
  let w = Array.length x in
  let out = Array.make w Lit.false_ in
  let carry = ref cin in
  for j = 0 to w - 1 do
    let xy = Aig.xor_ g x.(j) y.(j) in
    out.(j) <- Aig.xor_ g xy !carry;
    carry := Aig.or_ g (Aig.and_ g x.(j) y.(j)) (Aig.and_ g xy !carry)
  done;
  out

let radix4 n =
  if n <= 0 then invalid_arg "Booth.radix4: width must be positive";
  let w = 2 * n in
  let g = Aig.create ~num_inputs:w in
  let a_bit j = if j < n then Aig.input g j else Lit.false_ in
  let b_bit j = if j >= 0 && j < n then Aig.input g (n + j) else Lit.false_ in
  let acc = ref (Array.make w Lit.false_) in
  (* Enough radix-4 digits to consume all of b's bits. *)
  let digits = (n / 2) + 1 in
  for i = 0 to digits - 1 do
    let x1 = b_bit ((2 * i) + 1) and x0 = b_bit (2 * i) and xm = b_bit ((2 * i) - 1) in
    (* digit in {-2,-1,0,1,2}: |digit|=1 when x0 <> xm; |digit|=2 when
       x0 = xm and x1 <> x0; sign = x1 (digit 0 encodes as -0). *)
    let sel1 = Aig.xor_ g x0 xm in
    let sel2 = Aig.and_ g (Aig.xnor_ g x0 xm) (Aig.xor_ g x1 x0) in
    let neg = x1 in
    (* Partial product before sign, already shifted by 2i:
       bit j is a(j-2i) under sel1, a(j-2i-1) under sel2. *)
    let base =
      Array.init w (fun j ->
          let single = if j - (2 * i) >= 0 then Aig.and_ g sel1 (a_bit (j - (2 * i))) else Lit.false_ in
          let dbl =
            if j - (2 * i) - 1 >= 0 then Aig.and_ g sel2 (a_bit (j - (2 * i) - 1)) else Lit.false_
          in
          Aig.or_ g single dbl)
    in
    (* Apply the sign: xor with neg everywhere, +neg at bit 2i (bits
       below the shift are zero, so conditioning the complement on
       positions >= 2i keeps the value correct: ~0...0 contributes the
       all-ones prefix which the +1 at 2i turns into the two's
       complement). *)
    let signed = Array.mapi (fun j l -> if j >= 2 * i then Aig.xor_ g l neg else l) base in
    let plus_one = Array.init w (fun j -> if j = 2 * i then neg else Lit.false_) in
    acc := add_vec g !acc signed Lit.false_;
    acc := add_vec g !acc plus_one Lit.false_
  done;
  Array.iter (Aig.add_output g) !acc;
  g
