(** The named benchmark suite driving tests, examples and the
    experiment harness.  Each case is a pair of functionally equivalent
    circuits with different structure (golden vs. revised), built
    deterministically. *)

type case = {
  name : string;
  golden : unit -> Aig.t;
  revised : unit -> Aig.t;
}

(** The default suite used by the T1–T4 tables: adder pairs,
    multiplier pairs, datapath pairs and rewritten random logic. *)
val default : case list

(** A smaller suite for quick runs and CI-style tests. *)
val small : case list

(** Hard instances (seconds per engine): Booth-vs-array multiplier
    pairs where the sweeping engine decisively beats the monolithic
    call.  Kept out of {!default} so per-suite sweeps stay fast. *)
val hard : case list

val find : string -> case option
val names : case list -> string list

(** Build the single-output miter of a case. *)
val miter_of : case -> Aig.t
