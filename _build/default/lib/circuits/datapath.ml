module Lit = Aig.Lit

let operand_inputs g n =
  let a = Array.init n (Aig.input g) in
  let b = Array.init n (fun i -> Aig.input g (n + i)) in
  (a, b)

let equality ?(tree = true) n =
  if n <= 0 then invalid_arg "Datapath.equality: width must be positive";
  let g = Aig.create ~num_inputs:(2 * n) in
  let a, b = operand_inputs g n in
  let eqs = List.init n (fun i -> Aig.xnor_ g a.(i) b.(i)) in
  let out =
    if tree then Aig.and_list g eqs
    else List.fold_left (Aig.and_ g) Lit.true_ eqs
  in
  Aig.add_output g out;
  g

let less_than n =
  if n <= 0 then invalid_arg "Datapath.less_than: width must be positive";
  let g = Aig.create ~num_inputs:(2 * n) in
  let a, b = operand_inputs g n in
  (* borrow chain from LSB: lt(i) = (~a(i) & b(i)) | (a(i)=b(i)) & lt(i-1) *)
  let lt = ref Lit.false_ in
  for i = 0 to n - 1 do
    let strictly = Aig.and_ g (Lit.neg a.(i)) b.(i) in
    let equal = Aig.xnor_ g a.(i) b.(i) in
    lt := Aig.or_ g strictly (Aig.and_ g equal !lt)
  done;
  Aig.add_output g !lt;
  g

let parity ?(tree = true) n =
  if n <= 0 then invalid_arg "Datapath.parity: width must be positive";
  let g = Aig.create ~num_inputs:n in
  let bits = List.init n (Aig.input g) in
  let out =
    if tree then
      let rec reduce = function
        | [] -> Lit.false_
        | [ x ] -> x
        | xs ->
          let rec pair = function
            | [] -> []
            | [ x ] -> [ x ]
            | x :: y :: rest -> Aig.xor_ g x y :: pair rest
          in
          reduce (pair xs)
      in
      reduce bits
    else List.fold_left (Aig.xor_ g) Lit.false_ bits
  in
  Aig.add_output g out;
  g

let alu n =
  if n <= 0 then invalid_arg "Datapath.alu: width must be positive";
  let g = Aig.create ~num_inputs:(2 + (2 * n)) in
  let op1 = Aig.input g 0 and op0 = Aig.input g 1 in
  let a = Array.init n (fun i -> Aig.input g (2 + i)) in
  let b = Array.init n (fun i -> Aig.input g (2 + n + i)) in
  let carry = ref Lit.false_ in
  for i = 0 to n - 1 do
    let and_r = Aig.and_ g a.(i) b.(i) in
    let or_r = Aig.or_ g a.(i) b.(i) in
    let xor_r = Aig.xor_ g a.(i) b.(i) in
    let add_r = Aig.xor_ g xor_r !carry in
    carry := Aig.or_ g and_r (Aig.and_ g xor_r !carry);
    (* op: 00 -> AND, 01 -> OR, 10 -> XOR, 11 -> ADD *)
    let low = Aig.mux g ~sel:op0 ~t:or_r ~e:and_r in
    let high = Aig.mux g ~sel:op0 ~t:add_r ~e:xor_r in
    Aig.add_output g (Aig.mux g ~sel:op1 ~t:high ~e:low)
  done;
  g

let mux_tree k =
  if k <= 0 then invalid_arg "Datapath.mux_tree: need at least one select bit";
  let data_count = 1 lsl k in
  let g = Aig.create ~num_inputs:(k + data_count) in
  let sel = Array.init k (Aig.input g) in
  let data = Array.init data_count (fun i -> Aig.input g (k + i)) in
  let rec build level lits =
    match lits with
    | [ out ] -> out
    | lits ->
      let rec pair = function
        | [] -> []
        | [ _ ] -> invalid_arg "Datapath.mux_tree: internal odd level"
        | e :: t :: rest -> Aig.mux g ~sel:sel.(level) ~t ~e :: pair rest
      in
      build (level + 1) (pair lits)
  in
  Aig.add_output g (build 0 (Array.to_list data));
  g
