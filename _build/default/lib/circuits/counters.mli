(** Sequential benchmark generators (transition structures for
    {!Aig.Seq}).

    The classic bounded-equivalence pair: a binary counter whose
    outputs are Gray-encoded combinationally, versus a counter that
    {e stores} the Gray code and increments through conversion.  Same
    observable behaviour from reset, entirely different registers. *)

(** Binary up-counter with enable: 1 PI (enable), [width] latches,
    outputs the Gray encoding of the count. *)
val gray_output_binary_counter : int -> Aig.Seq.t

(** Gray-coded counter: 1 PI (enable), [width] latches holding the
    Gray code itself; next state converts to binary, increments, and
    converts back; outputs the stored code. *)
val gray_state_counter : int -> Aig.Seq.t

(** Plain binary counter with enable, outputs the count. *)
val binary_counter : int -> Aig.Seq.t

(** Fibonacci LFSR over [width] bits with taps at the positions set in
    [taps]; no PIs, outputs the state.  The all-zero reset state is
    made self-escaping by injecting the NOR of the state. *)
val lfsr : taps:int -> int -> Aig.Seq.t
