(** Unsigned multiplier generators.

    Interface: inputs [a0..a(n-1) b0..b(n-1)] (LSB first), outputs the
    [2n]-bit product.  The two variants build the same function with
    different summation structures. *)

(** Array multiplier: partial products summed row by row with ripple
    carry-save rows. *)
val array : int -> Aig.t

(** Shift-and-add: accumulates [a << i] under [b_i] with a chain of
    conditional ripple additions. *)
val shift_add : int -> Aig.t
