module Lit = Aig.Lit

(* state + enable (ripple increment); returns next-state literals *)
let increment g state enable =
  let carry = ref enable in
  Array.map
    (fun bit ->
      let next = Aig.xor_ g bit !carry in
      carry := Aig.and_ g bit !carry;
      next)
    state

let bin_to_gray g state =
  Array.mapi
    (fun i bit -> if i = Array.length state - 1 then bit else Aig.xor_ g bit state.(i + 1))
    state

let gray_to_bin g state =
  let n = Array.length state in
  let binary = Array.make n Lit.false_ in
  let acc = ref Lit.false_ in
  for i = n - 1 downto 0 do
    acc := Aig.xor_ g !acc state.(i);
    binary.(i) <- !acc
  done;
  binary

let with_frame width build =
  if width <= 0 then invalid_arg "Counters: width must be positive";
  let g = Aig.create ~num_inputs:(1 + width) in
  let enable = Aig.input g 0 in
  let state = Array.init width (fun i -> Aig.input g (1 + i)) in
  let outputs, next = build g enable state in
  Array.iter (Aig.add_output g) outputs;
  Array.iter (Aig.add_output g) next;
  Aig.Seq.create g ~num_pis:1 ~num_latches:width

let binary_counter width =
  with_frame width (fun g enable state ->
      let next = increment g state enable in
      (state, next))

let gray_output_binary_counter width =
  with_frame width (fun g enable state ->
      let next = increment g state enable in
      (bin_to_gray g state, next))

let gray_state_counter width =
  with_frame width (fun g enable state ->
      let binary = gray_to_bin g state in
      let next_binary = increment g binary enable in
      (state, bin_to_gray g next_binary))

let lfsr ~taps width =
  if width <= 0 then invalid_arg "Counters.lfsr: width must be positive";
  let g = Aig.create ~num_inputs:width in
  let state = Array.init width (Aig.input g) in
  (* feedback = XOR of tapped bits, XOR NOR(state) to escape all-zero *)
  let tapped = ref [] in
  for i = 0 to width - 1 do
    if (taps lsr i) land 1 = 1 then tapped := state.(i) :: !tapped
  done;
  let feedback =
    List.fold_left (Aig.xor_ g) Lit.false_ !tapped
  in
  let zero = Lit.neg (Aig.or_list g (Array.to_list state)) in
  let feedback = Aig.xor_ g feedback zero in
  let next = Array.init width (fun i -> if i = 0 then feedback else state.(i - 1)) in
  Array.iter (Aig.add_output g) state;
  Array.iter (Aig.add_output g) next;
  Aig.Seq.create g ~num_pis:0 ~num_latches:width
