(** Parallel-prefix adders.

    All three share the ripple adder's interface
    ([a0..a(n-1) b0..b(n-1)] → [s0..s(n-1) cout]) but compute carries
    with different prefix networks over the (generate, propagate)
    semigroup — the classic high-performance adder structures, and
    classic equivalence-checking counterparts to the ripple chain. *)

(** Kogge–Stone: minimal depth, maximal wiring (span-doubling). *)
val kogge_stone : int -> Aig.t

(** Brent–Kung: ~2 log n depth, sparse tree (up-sweep / down-sweep). *)
val brent_kung : int -> Aig.t

(** Sklansky: minimal depth divide-and-conquer with high fanout. *)
val sklansky : int -> Aig.t
