module Lit = Aig.Lit
module Rng = Support.Rng

let generate rng ~num_inputs ~num_ands ~num_outputs =
  if num_inputs <= 0 then invalid_arg "Random_aig.generate: need inputs";
  if num_outputs <= 0 then invalid_arg "Random_aig.generate: need outputs";
  let g = Aig.create ~num_inputs in
  let pool = ref (List.init num_inputs (Aig.input g)) in
  let pool_arr () = Array.of_list !pool in
  for _ = 1 to num_ands do
    let arr = pool_arr () in
    let pick () =
      let l = arr.(Rng.int rng (Array.length arr)) in
      Lit.apply_sign l ~neg:(Rng.bool rng)
    in
    let l = Aig.and_ g (pick ()) (pick ()) in
    if not (Lit.is_const l) then pool := l :: !pool
  done;
  let arr = pool_arr () in
  for _ = 1 to num_outputs do
    let l = arr.(Rng.int rng (Array.length arr)) in
    Aig.add_output g (Lit.apply_sign l ~neg:(Rng.bool rng))
  done;
  g
