(** Additional datapath/control generators for the benchmark suite. *)

(** Logical barrel shifter (left): inputs are [k] shift-amount bits
    followed by [2^k] data bits; outputs the shifted word (zeros shift
    in).  [k] mux stages, one per shift-amount bit. *)
val barrel_shifter : int -> Aig.t

(** Priority encoder over [n] request lines (input 0 has priority):
    outputs [ceil(log2 n)] index bits and a "valid" flag. *)
val priority_encoder : int -> Aig.t

(** Binary-to-Gray converter over [n] bits. *)
val binary_to_gray : int -> Aig.t

(** Gray-to-binary converter over [n] bits (prefix XOR chain). *)
val gray_to_binary : int -> Aig.t

(** Bitwise majority of three [n]-bit operands (inputs a, b, c
    concatenated). *)
val majority3 : int -> Aig.t
