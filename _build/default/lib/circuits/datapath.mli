(** Miscellaneous datapath generators used by the benchmark suite. *)

(** Equality comparator: inputs [a0..a(n-1) b0..b(n-1)], one output
    [a = b].  [tree] picks a balanced or linear AND structure. *)
val equality : ?tree:bool -> int -> Aig.t

(** Unsigned less-than comparator: output [a < b], computed by a
    borrow-style chain. *)
val less_than : int -> Aig.t

(** Parity (XOR reduction) of [n] inputs; [tree] picks balanced or
    linear XOR structure. *)
val parity : ?tree:bool -> int -> Aig.t

(** A small ALU slice: inputs [op1 op0 a0.. b0..]; two select bits
    choose among AND, OR, XOR and ADD (carry dropped) over [n]-bit
    operands; outputs the [n]-bit result. *)
val alu : int -> Aig.t

(** Mux tree selecting one of [2^k] data inputs; inputs are
    [sel0..sel(k-1)] then the [2^k] data bits; one output. *)
val mux_tree : int -> Aig.t
