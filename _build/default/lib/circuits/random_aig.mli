(** Random AIG generation (deterministic via {!Support.Rng}).

    Used for fuzz-style property tests and for size-controlled
    benchmark instances without arithmetic structure. *)

(** [generate rng ~num_inputs ~num_ands ~num_outputs] draws each AND's
    fanins uniformly from already-built nodes with random complements,
    and outputs from the last nodes.  Structural hashing may fold some
    draws, so the result has at most [num_ands] ANDs. *)
val generate : Support.Rng.t -> num_inputs:int -> num_ands:int -> num_outputs:int -> Aig.t
