(** Adder generators.

    All variants share one interface: inputs [a0..a(n-1) b0..b(n-1)]
    (LSB first), outputs [s0..s(n-1) cout].  Different carry structures
    give structurally different, functionally identical circuits — the
    canonical equivalence-checking pairs. *)

(** Carry chained bit by bit. *)
val ripple_carry : int -> Aig.t

(** Carries computed from generate/propagate prefixes (flat lookahead:
    carry [i] is an OR of [i+1] product terms). *)
val carry_lookahead : int -> Aig.t

(** Blocks of [block] bits computed for both carry-in values and
    selected (default block = 4). *)
val carry_select : ?block:int -> int -> Aig.t
