module Lit = Aig.Lit

let barrel_shifter k =
  if k <= 0 then invalid_arg "Misc_logic.barrel_shifter: need at least one stage";
  let width = 1 lsl k in
  let g = Aig.create ~num_inputs:(k + width) in
  let amount = Array.init k (Aig.input g) in
  let word = ref (Array.init width (fun i -> Aig.input g (k + i))) in
  for stage = 0 to k - 1 do
    let shift = 1 lsl stage in
    let current = !word in
    word :=
      Array.init width (fun i ->
          let shifted = if i >= shift then current.(i - shift) else Lit.false_ in
          Aig.mux g ~sel:amount.(stage) ~t:shifted ~e:current.(i))
  done;
  Array.iter (Aig.add_output g) !word;
  g

let priority_encoder n =
  if n <= 0 then invalid_arg "Misc_logic.priority_encoder: need requests";
  let bits =
    let rec log2_ceil acc v = if 1 lsl acc >= v then acc else log2_ceil (acc + 1) v in
    max 1 (log2_ceil 0 n)
  in
  let g = Aig.create ~num_inputs:n in
  let req = Array.init n (Aig.input g) in
  (* grant(i) = req(i) AND none of req(0..i-1) *)
  let none_before = ref Lit.true_ in
  let grants =
    Array.init n (fun i ->
        let grant = Aig.and_ g req.(i) !none_before in
        none_before := Aig.and_ g !none_before (Lit.neg req.(i));
        grant)
  in
  for b = 0 to bits - 1 do
    let terms = ref [] in
    for i = 0 to n - 1 do
      if (i lsr b) land 1 = 1 then terms := grants.(i) :: !terms
    done;
    Aig.add_output g (Aig.or_list g !terms)
  done;
  Aig.add_output g (Lit.neg !none_before);
  g

let binary_to_gray n =
  if n <= 0 then invalid_arg "Misc_logic.binary_to_gray: width must be positive";
  let g = Aig.create ~num_inputs:n in
  let b = Array.init n (Aig.input g) in
  for i = 0 to n - 1 do
    if i = n - 1 then Aig.add_output g b.(i) else Aig.add_output g (Aig.xor_ g b.(i) b.(i + 1))
  done;
  g

let gray_to_binary n =
  if n <= 0 then invalid_arg "Misc_logic.gray_to_binary: width must be positive";
  let g = Aig.create ~num_inputs:n in
  let gray = Array.init n (Aig.input g) in
  (* binary(i) = XOR of gray(i..n-1), computed top down *)
  let acc = ref Lit.false_ in
  let binary = Array.make n Lit.false_ in
  for i = n - 1 downto 0 do
    acc := Aig.xor_ g !acc gray.(i);
    binary.(i) <- !acc
  done;
  Array.iter (Aig.add_output g) binary;
  g

let majority3 n =
  if n <= 0 then invalid_arg "Misc_logic.majority3: width must be positive";
  let g = Aig.create ~num_inputs:(3 * n) in
  for i = 0 to n - 1 do
    let a = Aig.input g i and b = Aig.input g (n + i) and c = Aig.input g ((2 * n) + i) in
    let maj = Aig.or_list g [ Aig.and_ g a b; Aig.and_ g a c; Aig.and_ g b c ] in
    Aig.add_output g maj
  done;
  g
