(** Library interface: benchmark circuit generators, function-
    preserving rewrites and the named suite. *)

module Adder = Adder
module Multiplier = Multiplier
module Prefix_adder = Prefix_adder
module Booth = Booth
module Datapath = Datapath
module Misc_logic = Misc_logic
module Counters = Counters
module Random_aig = Random_aig
module Rewrite = Rewrite
module Suite = Suite
