examples/proof_trace.ml: Aig Cec_core Circuits Cnf Format Proof Support
