examples/synthesis_flow.ml: Aig Cec_core Circuits Format Support Synth
