examples/sweeping_flow.mli:
