examples/scaling_study.ml: Aig Cec_core Circuits Format List Printf Proof
