examples/proof_trace.mli:
