examples/quickstart.ml: Aig Array Cec_core Circuits Format Proof
