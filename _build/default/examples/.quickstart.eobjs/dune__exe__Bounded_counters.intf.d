examples/bounded_counters.mli:
