examples/interpolation.mli:
