examples/quickstart.mli:
