examples/sweeping_flow.ml: Aig Cec_core Circuits Format List Proof
