examples/bounded_counters.ml: Aig Array Cec_core Circuits Format List Printf Proof
