examples/interpolation.ml: Aig Array Circuits Cnf Format Proof Sat Support
