(* Craig interpolation from an equivalence-checking refutation.

   The miter CNF of two equivalent circuits is unsatisfiable; splitting
   its clauses into an A-part (the golden circuit's definitional
   clauses) and a B-part (everything else: the revised circuit, the
   comparison logic and the output assertion) and running McMillan's
   labelling over the refutation yields a circuit I over the shared
   variables with A |= I and I /\ B unsatisfiable -- the
   over-approximate image operator model checkers consume.

   Run with: dune exec examples/interpolation.exe *)

module Solver = Sat.Solver

let () =
  let golden = Circuits.Adder.ripple_carry 4 in
  let revised = Circuits.Adder.carry_lookahead 4 in
  let miter = Aig.Miter.build golden revised in
  Format.printf "miter: %a@." Aig.pp_stats miter;

  (* Partition the miter CNF: A = cone of the golden outputs as
     re-instantiated inside the miter; B = the rest.  Rebuilding the
     miter mirrors Miter.build: golden structure lands first, so its
     nodes are the low variables. *)
  let whole = Cnf.Tseitin.miter_formula miter in
  let golden_nodes = 1 + Aig.num_inputs golden + Aig.num_ands golden in
  let a = Cnf.Formula.create () in
  let b = Cnf.Formula.create () in
  Cnf.Formula.iter
    (fun c ->
      if Cnf.Clause.max_var c < golden_nodes then ignore (Cnf.Formula.add a c)
      else ignore (Cnf.Formula.add b c))
    whole;
  Format.printf "partition: %d A-clauses, %d B-clauses@." (Cnf.Formula.num_clauses a)
    (Cnf.Formula.num_clauses b);

  let solver = Solver.create () in
  Solver.add_formula solver a;
  Solver.add_formula solver b;
  match Solver.solve solver with
  | Solver.Unsat root ->
    let itp = Proof.Interpolant.compute (Solver.proof solver) ~root ~a ~b in
    Format.printf "interpolant: %a@." Aig.pp_stats itp;
    let shared = Aig.Cone.support itp [ Aig.output itp 0 ] in
    Format.printf "support: %d shared variables@." (Array.length shared);
    (* Spot-check the contracts on random assignments. *)
    let rng = Support.Rng.create 2 in
    let num_vars = Cnf.Formula.num_vars whole in
    let violations = ref 0 in
    for _ = 1 to 10_000 do
      let assignment = Array.init num_vars (fun _ -> Support.Rng.bool rng) in
      let i_val = (Aig.eval (Aig.extract_cone itp [ Aig.output itp 0 ])
                     (Array.sub assignment 0 (Aig.num_inputs itp))).(0)
      in
      if Cnf.Formula.satisfied_by a assignment && not i_val then incr violations;
      if i_val && Cnf.Formula.satisfied_by b assignment then incr violations
    done;
    Format.printf "random contract check: %d violations in 10000 samples@." !violations
  | Solver.Sat _ | Solver.Unknown | Solver.Unsat_assuming _ ->
    Format.printf "unexpected: miter CNF not refuted@."
