(* A miniature synthesis flow, verified end-to-end with proofs — the
   motivating scenario for proof-producing equivalence checking: a
   synthesis tool transforms a golden netlist through several passes,
   and each result is checked against the original with an
   independently validated resolution certificate.

   Run with: dune exec examples/synthesis_flow.exe *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep

let verify name golden candidate =
  match (Cec.check (Cec.Sweeping Sweep.default_config) golden candidate).Cec.verdict with
  | Cec.Equivalent cert -> (
    match Cec_core.Certify.validate_against cert golden candidate with
    | Ok chains -> Format.printf "  %-28s certified equivalent (%d chains)@." name chains
    | Error e -> Format.printf "  %-28s certificate REJECTED: %a@." name Cec_core.Certify.pp_error e)
  | Cec.Inequivalent _ -> Format.printf "  %-28s INEQUIVALENT — synthesis bug!@." name
  | Cec.Undecided -> Format.printf "  %-28s undecided@." name

let () =
  let golden = Circuits.Datapath.alu 6 in
  Format.printf "golden ALU: %a@.@." Aig.pp_stats golden;

  (* Pass 1: a "technology-independent restructuring" that inflates the
     netlist (standing in for an aggressive, not-size-aware pass). *)
  let restructured = Circuits.Rewrite.restructure ~intensity:0.8 (Support.Rng.create 41) golden in
  Format.printf "after restructuring: %a@." Aig.pp_stats restructured;
  verify "restructured vs golden" golden restructured;

  (* Pass 2: SAT-free cleanup — cut sweeping merges functionally
     equal windows. *)
  let swept = Synth.Cutsweep.reduce restructured in
  Format.printf "@.after cut sweeping: %a@." Aig.pp_stats swept;
  verify "cut-swept vs golden" golden swept;

  (* Pass 3: SAT-backed functional reduction (fraiging). *)
  let fraiged, stats = Sweep.fraig swept Sweep.default_config in
  let fraiged = Aig.cleanup fraiged in
  Format.printf "@.after fraiging: %a (%d merges in %d SAT calls)@." Aig.pp_stats fraiged
    (stats.Sweep.merges + stats.Sweep.const_merges)
    stats.Sweep.sat_calls;
  verify "fraiged vs golden" golden fraiged;

  (* Pass 4: AND-tree rebalancing for depth. *)
  let balanced = Circuits.Rewrite.rebalance `Balanced fraiged in
  Format.printf "@.after balancing: %a@." Aig.pp_stats balanced;
  verify "balanced vs golden" golden balanced
