(* Inside the sweeping engine: simulation classes, refinement and the
   monolithic-vs-sweeping comparison on a multiplier pair — the
   workload class where proof stitching pays off most.

   Run with: dune exec examples/sweeping_flow.exe *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Simclass = Cec_core.Simclass

let describe_classes miter words seed =
  let simc = Simclass.create miter ~words ~seed in
  let classes, members = Simclass.class_stats simc in
  Format.printf "  %2d words: %4d candidate classes covering %5d nodes@." words classes members

let run_engine name engine miter =
  let report = Cec.check_miter engine miter in
  (match report.Cec.verdict with
  | Cec.Equivalent cert ->
    let s = Proof.Pstats.of_root cert.Cec.proof ~root:cert.Cec.root in
    Format.printf "%-11s EQUIVALENT  conflicts=%-6d sat_calls=%-4d proof: %a@." name
      report.Cec.solver_conflicts report.Cec.sat_calls Proof.Pstats.pp s
  | Cec.Inequivalent _ -> Format.printf "%-11s INEQUIVALENT (bug!)@." name
  | Cec.Undecided -> Format.printf "%-11s UNDECIDED@." name);
  (match report.Cec.sweep_stats with
  | Some s ->
    Format.printf "            merges=%d const=%d lemmas=%d cex=%d unknowns=%d@."
      s.Sweep.merges s.Sweep.const_merges s.Sweep.lemmas s.Sweep.cex s.Sweep.unknowns
  | None -> ())

let () =
  let golden = Circuits.Multiplier.array 4 in
  let revised = Circuits.Multiplier.shift_add 4 in
  let miter = Aig.Miter.build golden revised in
  Format.printf "miter of 4x4 array vs shift-add multiplier: %a@.@." Aig.pp_stats miter;

  Format.printf "candidate classes vs simulation effort:@.";
  List.iter (fun words -> describe_classes miter words 1) [ 1; 2; 8; 32 ];
  Format.printf "@.";

  run_engine "monolithic" Cec.Monolithic miter;
  run_engine "sweeping" (Cec.Sweeping Sweep.default_config) miter;
  run_engine "no-lemmas"
    (Cec.Sweeping { Sweep.default_config with Sweep.lemma_reuse = false })
    miter
