(* Scaling study: how stitched and monolithic proof sizes grow with
   circuit size on ripple-vs-lookahead adder miters (a miniature of
   experiment F1 in EXPERIMENTS.md).

   Run with: dune exec examples/scaling_study.exe *)

module Cec = Cec_core.Cec

let proof_size engine miter =
  match (Cec.check_miter engine miter).Cec.verdict with
  | Cec.Equivalent cert ->
    let s = Proof.Pstats.of_root cert.Cec.proof ~root:cert.Cec.root in
    Some (s.Proof.Pstats.chains, s.Proof.Pstats.resolutions)
  | Cec.Inequivalent _ | Cec.Undecided -> None

let () =
  Format.printf "width |   miter ANDs | mono chains / resolutions | sweep chains / resolutions@.";
  Format.printf "------+--------------+---------------------------+---------------------------@.";
  List.iter
    (fun width ->
      let miter =
        Aig.Miter.build (Circuits.Adder.ripple_carry width) (Circuits.Adder.carry_lookahead width)
      in
      let mono = proof_size Cec.Monolithic miter in
      let sweep = proof_size (Cec.Sweeping Cec_core.Sweep.default_config) miter in
      let show = function
        | Some (chains, res) -> Printf.sprintf "%7d / %-10d" chains res
        | None -> "        failed     "
      in
      Format.printf "%5d | %12d | %s | %s@." width (Aig.num_ands miter) (show mono) (show sweep))
    [ 2; 4; 8; 12; 16; 24 ]
