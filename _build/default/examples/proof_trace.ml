(* Proof anatomy on a miniature miter: print the miter CNF in DIMACS,
   the full stitched resolution proof in the trace format, and the
   trimming statistics — a end-to-end view of what a certificate
   actually contains.

   Run with: dune exec examples/proof_trace.exe *)

module Cec = Cec_core.Cec

let () =
  (* A 2-bit ripple adder vs. its restructured twin: small enough to
     read the whole proof. *)
  let golden = Circuits.Adder.ripple_carry 2 in
  let revised = Circuits.Rewrite.restructure ~intensity:1.0 (Support.Rng.create 4) golden in
  let miter = Aig.Miter.build golden revised in
  Format.printf "=== miter (%a) as AIGER ===@.%s@." Aig.pp_stats miter (Aig.Aiger.to_string miter);

  let formula = Cnf.Tseitin.miter_formula miter in
  Format.printf "=== miter CNF (%d vars, %d clauses) ===@.%s@." (Cnf.Formula.num_vars formula)
    (Cnf.Formula.num_clauses formula)
    (Cnf.Dimacs.to_string formula);

  match (Cec.check_miter (Cec.Sweeping Cec_core.Sweep.default_config) miter).Cec.verdict with
  | Cec.Equivalent cert ->
    let proof = cert.Cec.proof and root = cert.Cec.root in
    let reachable, total = Proof.Trim.sizes proof ~root in
    Format.printf "=== proof store: %d nodes, %d reachable from the refutation ===@." total
      reachable;
    let trimmed, troot = Proof.Trim.cone proof ~root in
    Format.printf "=== trimmed resolution trace ===@.%s@."
      (Proof.Export.trace_to_string trimmed ~root:troot);
    Format.printf "=== DRUP view (derived clauses only) ===@.%s@."
      (Proof.Export.drup_to_string trimmed ~root:troot);
    (match Proof.Checker.check trimmed ~root:troot ~formula () with
    | Ok chains -> Format.printf "checker: OK, %d chains verified@." chains
    | Error e -> Format.printf "checker: REJECTED %a@." Proof.Checker.pp_error e)
  | Cec.Inequivalent _ -> Format.printf "unexpected: inequivalent@."
  | Cec.Undecided -> Format.printf "unexpected: undecided@."
