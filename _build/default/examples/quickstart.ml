(* Quickstart: prove two structurally different adders equivalent and
   independently validate the resolution-proof certificate.

   Run with: dune exec examples/quickstart.exe *)

module Cec = Cec_core.Cec
module Certify = Cec_core.Certify

let () =
  let width = 16 in
  let golden = Circuits.Adder.ripple_carry width in
  let revised = Circuits.Adder.carry_lookahead width in
  Format.printf "golden : %a@." Aig.pp_stats golden;
  Format.printf "revised: %a@." Aig.pp_stats revised;

  let engine = Cec.Sweeping Cec_core.Sweep.default_config in
  let report = Cec.check engine golden revised in
  (match report.Cec.verdict with
  | Cec.Equivalent cert ->
    Format.printf "verdict: EQUIVALENT@.";
    let stats = Proof.Pstats.of_root cert.Cec.proof ~root:cert.Cec.root in
    Format.printf "stitched proof: %a@." Proof.Pstats.pp stats;
    (* Re-check the certificate against a miter CNF rebuilt from the
       circuits: nothing is trusted from the solver run. *)
    (match Certify.validate_against cert golden revised with
    | Ok chains -> Format.printf "certificate validated: %d chains re-derived@." chains
    | Error e -> Format.printf "certificate REJECTED: %a@." Certify.pp_error e)
  | Cec.Inequivalent cex ->
    Format.printf "verdict: INEQUIVALENT, cex:";
    Array.iter (fun b -> print_char (if b then '1' else '0')) cex;
    Format.printf "@."
  | Cec.Undecided -> Format.printf "verdict: UNDECIDED@.");
  (match report.Cec.sweep_stats with
  | Some s ->
    Format.printf "sweeping: %d SAT calls, %d merges, %d constant nodes, %d lemmas, %d cex@."
      s.Cec_core.Sweep.sat_calls s.Cec_core.Sweep.merges s.Cec_core.Sweep.const_merges
      s.Cec_core.Sweep.lemmas s.Cec_core.Sweep.cex
  | None -> ());
  Format.printf "total solver conflicts: %d@." report.Cec.solver_conflicts
