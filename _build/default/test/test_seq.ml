(* Tests for sequential support: transition structures, unrolling,
   AIGER-with-latches round trips, counters and bounded equivalence. *)

module Seq = Aig.Seq
module Cec = Cec_core.Cec

let bits_of_int n width = Array.init width (fun i -> (n lsr i) land 1 = 1)

let int_of_bits bits =
  Array.to_list bits |> List.mapi (fun i b -> if b then 1 lsl i else 0) |> List.fold_left ( + ) 0

(* Reference simulator for a Seq.t: returns per-frame outputs. *)
let simulate seq inputs_per_frame =
  let comb = Seq.transition seq in
  let pos = Seq.num_pos seq in
  let state = ref (Array.make (Seq.num_latches seq) false) in
  List.map
    (fun frame_inputs ->
      let outs = Aig.eval comb (Array.append frame_inputs !state) in
      state := Array.sub outs pos (Seq.num_latches seq);
      Array.sub outs 0 pos)
    inputs_per_frame

let test_unroll_matches_simulation () =
  let seq = Circuits.Counters.binary_counter 4 in
  let frames = 6 in
  let unrolled = Seq.unroll seq ~frames in
  Alcotest.(check int) "inputs" frames (Aig.num_inputs unrolled);
  Alcotest.(check int) "outputs" (frames * 4) (Aig.num_outputs unrolled);
  let rng = Support.Rng.create 8 in
  for _ = 1 to 30 do
    let stimulus = List.init frames (fun _ -> [| Support.Rng.bool rng |]) in
    let expected = simulate seq stimulus in
    let flat = Array.concat stimulus in
    let outs = Aig.eval unrolled flat in
    List.iteri
      (fun f frame_out ->
        Array.iteri
          (fun o v ->
            if outs.((f * 4) + o) <> v then Alcotest.failf "frame %d output %d differs" f o)
          frame_out)
      expected
  done

let test_binary_counter_counts () =
  let width = 4 in
  let seq = Circuits.Counters.binary_counter width in
  let frames = 20 in
  let stimulus = List.init frames (fun _ -> [| true |]) in
  let outputs = simulate seq stimulus in
  List.iteri
    (fun f out ->
      Alcotest.(check int) (Printf.sprintf "count at frame %d" f) (f mod 16) (int_of_bits out))
    outputs

let test_gray_counters_equivalent () =
  let a = Circuits.Counters.gray_output_binary_counter 4 in
  let b = Circuits.Counters.gray_state_counter 4 in
  match (Cec.check_bounded ~frames:8 (Cec.Sweeping Cec_core.Sweep.default_config) a b).Cec.verdict with
  | Cec.Equivalent cert -> (
    match Cec_core.Certify.validate cert with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "bounded certificate rejected: %a" Cec_core.Certify.pp_error e)
  | Cec.Inequivalent _ -> Alcotest.fail "gray counters must agree"
  | Cec.Undecided -> Alcotest.fail "undecided"

let test_bounded_detects_divergence () =
  (* A corrupted next-state function agrees at frame 1 (outputs read
     the reset state) but diverges later. *)
  let good = Circuits.Counters.binary_counter 3 in
  let bad =
    let g = Aig.create ~num_inputs:4 in
    let enable = Aig.input g 0 in
    let state = Array.init 3 (fun i -> Aig.input g (1 + i)) in
    Array.iter (Aig.add_output g) state;
    (* next bit 1 is corrupted: ignores the carry chain *)
    let carry = ref enable in
    Array.iteri
      (fun i bit ->
        let next = if i = 1 then bit else Aig.xor_ g bit !carry in
        carry := Aig.and_ g bit !carry;
        Aig.add_output g next)
      state;
    Aig.Seq.create g ~num_pis:1 ~num_latches:3
  in
  let engine = Cec.Monolithic in
  (match (Cec.check_bounded ~frames:1 engine good bad).Cec.verdict with
  | Cec.Equivalent _ -> ()
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.fail "frame 1 reads only the reset state");
  match (Cec.check_bounded ~frames:3 engine good bad).Cec.verdict with
  | Cec.Inequivalent trace ->
    (* the witness really distinguishes the unrollings *)
    let ua = Aig.Seq.unroll good ~frames:3 and ub = Aig.Seq.unroll bad ~frames:3 in
    Alcotest.(check bool) "witness distinguishes" true (Aig.eval ua trace <> Aig.eval ub trace)
  | Cec.Equivalent _ -> Alcotest.fail "divergence missed"
  | Cec.Undecided -> Alcotest.fail "undecided"

let test_lfsr_period () =
  (* x^4 + x^3 + 1 (taps 0b1100 over 4 bits) is maximal: period 15
     through nonzero states; our zero-escape makes 16 total. *)
  let seq = Circuits.Counters.lfsr ~taps:0b1100 4 in
  let stimulus = List.init 20 (fun _ -> [||]) in
  let states = List.map int_of_bits (simulate seq stimulus) in
  let first = List.hd states in
  Alcotest.(check int) "reset state observed" 0 first;
  (* all 4-bit values appear within 16 frames *)
  let seen = Hashtbl.create 16 in
  List.iteri (fun i s -> if i < 16 then Hashtbl.replace seen s ()) states;
  Alcotest.(check int) "full period with zero escape" 16 (Hashtbl.length seen)

let test_seq_aiger_roundtrip () =
  let seq = Circuits.Counters.gray_state_counter 4 in
  let seq' = Seq.of_aiger_string (Seq.to_aiger_string seq) in
  Alcotest.(check int) "pis" (Seq.num_pis seq) (Seq.num_pis seq');
  Alcotest.(check int) "latches" (Seq.num_latches seq) (Seq.num_latches seq');
  Alcotest.(check int) "pos" (Seq.num_pos seq) (Seq.num_pos seq');
  (* behavioural agreement over a random run *)
  let rng = Support.Rng.create 9 in
  let stimulus = List.init 12 (fun _ -> [| Support.Rng.bool rng |]) in
  Alcotest.(check bool) "same traces" true (simulate seq stimulus = simulate seq' stimulus)

let test_seq_aiger_errors () =
  let expect text =
    match Seq.of_aiger_string text with
    | exception Seq.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" text
  in
  expect "";
  expect "aag 2 1 1 0 0\n2\n4 2 1\n";
  (* reset-to-1 unsupported *)
  expect "aag 2 1 1 0 0\n2\n5 2\n" (* complemented latch literal *)

let test_combinational_reader_still_rejects_latches () =
  match Aig.Aiger.of_string "aag 2 1 1 0 0\n2\n4 2\n" with
  | exception Aig.Aiger.Parse_error _ -> ()
  | _ -> Alcotest.fail "combinational reader accepted a latch"

let base_suites =
  [
    ( "seq",
      [
        Alcotest.test_case "unroll matches simulation" `Quick test_unroll_matches_simulation;
        Alcotest.test_case "binary counter counts" `Quick test_binary_counter_counts;
        Alcotest.test_case "gray counters bounded-equivalent" `Quick test_gray_counters_equivalent;
        Alcotest.test_case "bounded divergence detected" `Quick test_bounded_detects_divergence;
        Alcotest.test_case "lfsr period" `Quick test_lfsr_period;
        Alcotest.test_case "seq aiger roundtrip" `Quick test_seq_aiger_roundtrip;
        Alcotest.test_case "seq aiger errors" `Quick test_seq_aiger_errors;
        Alcotest.test_case "combinational reader rejects latches" `Quick
          test_combinational_reader_still_rejects_latches;
      ] );
  ]

(* --- bounded safety (BMC) --- *)

let test_bmc_counter_reach () =
  (* Property: 3-bit counter with enable reaches 7.  Bad-state flag =
     (state = 7).  Reachable at frame 8 (7 increments after reset
     frame), not before. *)
  let width = 3 in
  let g = Aig.create ~num_inputs:(1 + width) in
  let enable = Aig.input g 0 in
  let state = Array.init width (fun i -> Aig.input g (1 + i)) in
  Aig.add_output g (Aig.and_list g (Array.to_list state));
  (* next state: increment when enabled *)
  let carry = ref enable in
  Array.iter
    (fun bit ->
      Aig.add_output g (Aig.xor_ g bit !carry);
      carry := Aig.and_ g bit !carry)
    state;
  let seq = Aig.Seq.create g ~num_pis:1 ~num_latches:width in
  let engine = Cec.Monolithic in
  (match (Cec.check_bounded_safety ~frames:7 engine seq).Cec.verdict with
  | Cec.Equivalent cert -> (
    match Proof.Checker.check cert.Cec.proof ~root:cert.Cec.root ~formula:cert.Cec.formula () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "safety certificate rejected: %a" Proof.Checker.pp_error e)
  | Cec.Inequivalent _ -> Alcotest.fail "7 unreachable within 7 frames"
  | Cec.Undecided -> Alcotest.fail "undecided");
  match (Cec.check_bounded_safety ~frames:8 engine seq).Cec.verdict with
  | Cec.Inequivalent trace ->
    (* the trace must enable counting on at least 7 frames *)
    let enables = Array.to_list trace |> List.filter Fun.id |> List.length in
    Alcotest.(check bool) "trace enables >= 7 increments" true (enables >= 7)
  | Cec.Equivalent _ -> Alcotest.fail "7 must be reachable in 8 frames"
  | Cec.Undecided -> Alcotest.fail "undecided"

let test_bmc_unreachable_code () =
  (* An LFSR never revisits... simpler: flag = state(0) AND NOT
     state(0) is structurally false: safe for any bound, and the
     certificate validates. *)
  let g = Aig.create ~num_inputs:2 in
  let s0 = Aig.input g 1 in
  Aig.add_output g (Aig.and_ g s0 (Aig.Lit.neg s0));
  Aig.add_output g (Aig.xor_ g s0 (Aig.input g 0));
  let seq = Aig.Seq.create g ~num_pis:1 ~num_latches:1 in
  match
    (Cec.check_bounded_safety ~frames:12 (Cec.Sweeping Cec_core.Sweep.default_config) seq).Cec.verdict
  with
  | Cec.Equivalent _ -> ()
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.fail "contradiction flagged reachable"

let bmc_suites =
  [
    ( "seq-bmc",
      [
        Alcotest.test_case "counter reachability bound" `Quick test_bmc_counter_reach;
        Alcotest.test_case "structurally unreachable flag" `Quick test_bmc_unreachable_code;
      ] );
  ]

let suites = base_suites @ bmc_suites
