(* Tests for the circuit generators: every arithmetic generator is
   checked semantically against integer arithmetic, and every rewrite
   is checked to preserve functions (exhaustively for small widths). *)

module Rng = Support.Rng

let bits_of_int n width = Array.init width (fun i -> (n lsr i) land 1 = 1)

let int_of_bits bits =
  Array.to_list bits |> List.mapi (fun i b -> if b then 1 lsl i else 0) |> List.fold_left ( + ) 0

(* --- adders --- *)

let check_adder name make width =
  let g = make width in
  Alcotest.(check int) (name ^ " inputs") (2 * width) (Aig.num_inputs g);
  Alcotest.(check int) (name ^ " outputs") (width + 1) (Aig.num_outputs g);
  let limit = min 256 (1 lsl (2 * width)) in
  let rng = Rng.create 17 in
  for _ = 1 to limit do
    let a = Rng.int rng (1 lsl width) and b = Rng.int rng (1 lsl width) in
    let assignment = Array.append (bits_of_int a width) (bits_of_int b width) in
    let sum = int_of_bits (Aig.eval g assignment) in
    if sum <> a + b then Alcotest.failf "%s: %d + %d = %d (got %d)" name a b (a + b) sum
  done

let test_ripple_carry () = List.iter (check_adder "ripple" Circuits.Adder.ripple_carry) [ 1; 2; 5; 8 ]

let test_carry_lookahead () =
  List.iter (check_adder "lookahead" Circuits.Adder.carry_lookahead) [ 1; 2; 5; 8 ]

let test_carry_select () =
  List.iter (check_adder "select" (Circuits.Adder.carry_select ~block:3)) [ 1; 2; 5; 8 ]

(* --- multipliers --- *)

let check_multiplier name make width =
  let g = make width in
  Alcotest.(check int) (name ^ " outputs") (2 * width) (Aig.num_outputs g);
  for a = 0 to (1 lsl width) - 1 do
    for b = 0 to (1 lsl width) - 1 do
      let assignment = Array.append (bits_of_int a width) (bits_of_int b width) in
      let product = int_of_bits (Aig.eval g assignment) in
      if product <> a * b then Alcotest.failf "%s: %d * %d = %d (got %d)" name a b (a * b) product
    done
  done

let test_array_multiplier () = List.iter (check_multiplier "array" Circuits.Multiplier.array) [ 1; 2; 3; 4 ]

let test_shift_add_multiplier () =
  List.iter (check_multiplier "shift-add" Circuits.Multiplier.shift_add) [ 1; 2; 3; 4 ]

(* --- datapath --- *)

let test_equality () =
  let width = 4 in
  List.iter
    (fun tree ->
      let g = Circuits.Datapath.equality ~tree width in
      for a = 0 to 15 do
        for b = 0 to 15 do
          let assignment = Array.append (bits_of_int a width) (bits_of_int b width) in
          Alcotest.(check bool)
            (Printf.sprintf "eq(%d,%d)" a b)
            (a = b)
            (Aig.eval g assignment).(0)
        done
      done)
    [ true; false ]

let test_less_than () =
  let width = 4 in
  let g = Circuits.Datapath.less_than width in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let assignment = Array.append (bits_of_int a width) (bits_of_int b width) in
      Alcotest.(check bool) (Printf.sprintf "lt(%d,%d)" a b) (a < b) (Aig.eval g assignment).(0)
    done
  done

let test_parity () =
  List.iter
    (fun tree ->
      let g = Circuits.Datapath.parity ~tree 5 in
      for mask = 0 to 31 do
        let assignment = bits_of_int mask 5 in
        let expected = Array.fold_left (fun acc b -> acc <> b) false assignment in
        Alcotest.(check bool) (Printf.sprintf "parity(%d)" mask) expected (Aig.eval g assignment).(0)
      done)
    [ true; false ]

let test_alu () =
  let width = 3 in
  let g = Circuits.Datapath.alu width in
  let mask = (1 lsl width) - 1 in
  for op = 0 to 3 do
    for a = 0 to mask do
      for b = 0 to mask do
        let assignment =
          Array.concat
            [ [| op lsr 1 = 1; op land 1 = 1 |]; bits_of_int a width; bits_of_int b width ]
        in
        let result = int_of_bits (Aig.eval g assignment) in
        let expected =
          match op with
          | 0 -> a land b
          | 1 -> a lor b
          | 2 -> a lxor b
          | _ -> (a + b) land mask
        in
        if result <> expected then
          Alcotest.failf "alu op=%d a=%d b=%d: expected %d got %d" op a b expected result
      done
    done
  done

let test_mux_tree () =
  let k = 3 in
  let g = Circuits.Datapath.mux_tree k in
  let data_count = 1 lsl k in
  for sel = 0 to data_count - 1 do
    for data_mask = 0 to (1 lsl data_count) - 1 do
      let assignment = Array.append (bits_of_int sel k) (bits_of_int data_mask data_count) in
      let expected = (data_mask lsr sel) land 1 = 1 in
      if (Aig.eval g assignment).(0) <> expected then
        Alcotest.failf "mux sel=%d data=%d" sel data_mask
    done
  done

(* --- random --- *)

let test_random_aig_shape () =
  let g = Circuits.Random_aig.generate (Rng.create 3) ~num_inputs:5 ~num_ands:50 ~num_outputs:4 in
  Aig.check g;
  Alcotest.(check int) "inputs" 5 (Aig.num_inputs g);
  Alcotest.(check int) "outputs" 4 (Aig.num_outputs g);
  Alcotest.(check bool) "ands bounded" true (Aig.num_ands g <= 50);
  (* determinism *)
  let g' = Circuits.Random_aig.generate (Rng.create 3) ~num_inputs:5 ~num_ands:50 ~num_outputs:4 in
  Alcotest.(check string) "deterministic" (Aig.Aiger.to_string g) (Aig.Aiger.to_string g')

(* --- rewrites preserve functions --- *)

let same_function a b =
  (* Exhaustive comparison; both graphs must have the same interface. *)
  let n = Aig.num_inputs a in
  assert (n <= 12);
  let ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    let assignment = Array.init n (fun i -> (mask lsr i) land 1 = 1) in
    if Aig.eval a assignment <> Aig.eval b assignment then ok := false
  done;
  !ok

let prop_restructure_preserves =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"restructure preserves functions" ~count:40 arb (fun seed ->
         let rng = Rng.create seed in
         let g =
           Circuits.Random_aig.generate (Rng.create (seed + 1)) ~num_inputs:5 ~num_ands:30
             ~num_outputs:3
         in
         let g' = Circuits.Rewrite.restructure ~intensity:1.0 rng g in
         same_function g g'))

let prop_rebalance_preserves =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"rebalance preserves functions" ~count:40 arb (fun seed ->
         let g =
           Circuits.Random_aig.generate (Rng.create seed) ~num_inputs:5 ~num_ands:30 ~num_outputs:3
         in
         same_function g (Circuits.Rewrite.rebalance `Balanced g)
         && same_function g (Circuits.Rewrite.rebalance `Left g)))

let prop_double_negate_preserves =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"double_negate preserves functions" ~count:40 arb (fun seed ->
         let g =
           Circuits.Random_aig.generate (Rng.create seed) ~num_inputs:5 ~num_ands:30 ~num_outputs:3
         in
         same_function g (Circuits.Rewrite.double_negate g)))

let test_restructure_changes_structure () =
  let g = Circuits.Adder.ripple_carry 8 in
  let g' = Circuits.Rewrite.restructure ~intensity:1.0 (Rng.create 5) g in
  Alcotest.(check bool) "adds nodes" true (Aig.num_ands g' > Aig.num_ands g)

(* --- suite --- *)

let test_suite_consistency () =
  List.iter
    (fun case ->
      let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
      Alcotest.(check int)
        (case.Circuits.Suite.name ^ " inputs agree")
        (Aig.num_inputs golden) (Aig.num_inputs revised);
      Alcotest.(check int)
        (case.Circuits.Suite.name ^ " outputs agree")
        (Aig.num_outputs golden) (Aig.num_outputs revised))
    Circuits.Suite.default

let test_suite_find () =
  Alcotest.(check bool) "find known" true (Circuits.Suite.find "add4-rc-cla" <> None);
  Alcotest.(check bool) "find unknown" true (Circuits.Suite.find "nope" = None)

let base_suites =
  [
    ( "circuits",
      [
        Alcotest.test_case "ripple-carry adder" `Quick test_ripple_carry;
        Alcotest.test_case "carry-lookahead adder" `Quick test_carry_lookahead;
        Alcotest.test_case "carry-select adder" `Quick test_carry_select;
        Alcotest.test_case "array multiplier" `Quick test_array_multiplier;
        Alcotest.test_case "shift-add multiplier" `Quick test_shift_add_multiplier;
        Alcotest.test_case "equality comparator" `Quick test_equality;
        Alcotest.test_case "less-than comparator" `Quick test_less_than;
        Alcotest.test_case "parity" `Quick test_parity;
        Alcotest.test_case "alu" `Quick test_alu;
        Alcotest.test_case "mux tree" `Quick test_mux_tree;
        Alcotest.test_case "random aig shape" `Quick test_random_aig_shape;
        prop_restructure_preserves;
        prop_rebalance_preserves;
        prop_double_negate_preserves;
        Alcotest.test_case "restructure changes structure" `Quick test_restructure_changes_structure;
        Alcotest.test_case "suite interface consistency" `Quick test_suite_consistency;
        Alcotest.test_case "suite find" `Quick test_suite_find;
      ] );
  ]

(* --- prefix adders and Booth multiplier --- *)

let test_prefix_adders () =
  List.iter
    (fun (name, make) ->
      List.iter (check_adder name make) [ 1; 2; 3; 5; 8; 13; 16 ])
    [
      ("kogge-stone", Circuits.Prefix_adder.kogge_stone);
      ("brent-kung", Circuits.Prefix_adder.brent_kung);
      ("sklansky", Circuits.Prefix_adder.sklansky);
    ]

let test_prefix_depth_advantage () =
  (* Prefix networks must be shallower than the ripple chain at width
     32 — the structural property that motivates them. *)
  let ripple = Circuits.Adder.ripple_carry 32 in
  List.iter
    (fun make ->
      let g = make 32 in
      Alcotest.(check bool) "shallower than ripple" true (Aig.depth g < Aig.depth ripple))
    [ Circuits.Prefix_adder.kogge_stone; Circuits.Prefix_adder.sklansky ]

let test_booth () = List.iter (check_multiplier "booth" Circuits.Booth.radix4) [ 1; 2; 3; 4; 5 ]

let test_booth_wide_random () =
  (* Width 8 against integer multiplication on random operands. *)
  let g = Circuits.Booth.radix4 8 in
  let rng = Rng.create 23 in
  for _ = 1 to 300 do
    let a = Rng.int rng 256 and b = Rng.int rng 256 in
    let assignment = Array.append (bits_of_int a 8) (bits_of_int b 8) in
    let p = int_of_bits (Aig.eval g assignment) in
    if p <> a * b then Alcotest.failf "booth8: %d * %d = %d (got %d)" a b (a * b) p
  done

let prefix_suites =
  [
    ( "circuits-prefix",
      [
        Alcotest.test_case "prefix adders add" `Quick test_prefix_adders;
        Alcotest.test_case "prefix depth advantage" `Quick test_prefix_depth_advantage;
        Alcotest.test_case "booth multiplies" `Quick test_booth;
        Alcotest.test_case "booth width 8 random" `Quick test_booth_wide_random;
      ] );
  ]

let suites = base_suites @ prefix_suites
