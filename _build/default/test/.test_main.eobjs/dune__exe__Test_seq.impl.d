test/test_seq.ml: Aig Alcotest Array Cec_core Circuits Fun Hashtbl List Printf Proof Support
