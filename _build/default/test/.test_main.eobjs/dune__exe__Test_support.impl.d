test/test_support.ml: Alcotest Array Support
