test/test_misc.ml: Aig Alcotest Array Circuits Cnf Int64 List Printf Proof Sat Support Synth
