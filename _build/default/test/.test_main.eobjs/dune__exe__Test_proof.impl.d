test/test_proof.ml: Aig Alcotest Array Cnf List Proof QCheck QCheck_alcotest Sat String Support
