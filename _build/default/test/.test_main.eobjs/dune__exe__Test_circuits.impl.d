test/test_circuits.ml: Aig Alcotest Array Circuits List Printf QCheck QCheck_alcotest Support
