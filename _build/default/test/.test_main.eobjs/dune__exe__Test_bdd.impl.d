test/test_bdd.ml: Aig Alcotest Array Bdd Circuits List Printf Support
