test/test_aig.ml: Aig Alcotest Array Circuits Filename Fun Gen Int64 List Printf QCheck QCheck_alcotest String Support Sys
