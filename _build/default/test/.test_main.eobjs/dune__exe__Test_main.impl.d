test/test_main.ml: Alcotest Test_aig Test_bdd Test_circuits Test_cnf Test_core Test_edge Test_misc Test_proof Test_sat Test_seq Test_support Test_synth
