test/test_cnf.ml: Aig Alcotest Array Circuits Cnf Format Gen List Printf QCheck QCheck_alcotest Support
