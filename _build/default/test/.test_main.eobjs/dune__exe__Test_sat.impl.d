test/test_sat.ml: Aig Alcotest Array Cnf List Proof Sat Support
