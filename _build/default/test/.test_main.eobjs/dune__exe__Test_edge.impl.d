test/test_edge.ml: Aig Alcotest Array Bdd Circuits Cnf List Printf Proof Sat
