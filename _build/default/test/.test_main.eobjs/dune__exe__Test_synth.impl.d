test/test_synth.ml: Aig Alcotest Array Cec_core Circuits Int64 List Printf QCheck QCheck_alcotest Support Synth
