test/test_core.ml: Aig Alcotest Array Bdd Cec_core Circuits List Proof QCheck QCheck_alcotest String Support
