(* Tests for the CNF package: clause algebra, formulas, the Tseitin
   transform (checked semantically against graph evaluation) and
   DIMACS round trips. *)

module Clause = Cnf.Clause
module Formula = Cnf.Formula
module Lit = Aig.Lit

let lit v = Lit.of_var v
let nlit v = Lit.neg (Lit.of_var v)
let clause = Alcotest.testable Clause.pp Clause.equal

(* --- Clause --- *)

let test_clause_normalization () =
  let c = Clause.of_list [ lit 3; lit 1; lit 3; lit 2 ] in
  Alcotest.(check (list int)) "sorted, deduplicated" [ lit 1; lit 2; lit 3 ] (Clause.to_list c);
  Alcotest.(check int) "size" 3 (Clause.size c);
  Alcotest.(check bool) "mem" true (Clause.mem (lit 2) c);
  Alcotest.(check bool) "not mem" false (Clause.mem (nlit 2) c)

let test_clause_tautology_rejected () =
  match Clause.of_list [ lit 1; nlit 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tautology accepted"

let test_clause_resolve () =
  let c = Clause.of_list [ lit 1; lit 2 ] in
  let d = Clause.of_list [ nlit 1; lit 3 ] in
  let r = Clause.resolve c d ~pivot:1 in
  Alcotest.check clause "resolvent" (Clause.of_list [ lit 2; lit 3 ]) r;
  Alcotest.check clause "resolve_any" r (Clause.resolve_any ~c ~d);
  Alcotest.check clause "resolve_any symmetric" r (Clause.resolve_any ~c:d ~d:c)

let test_clause_resolve_errors () =
  let c = Clause.of_list [ lit 1; lit 2 ] in
  let d = Clause.of_list [ lit 1; lit 3 ] in
  (match Clause.resolve c d ~pivot:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing negative pivot accepted");
  (match Clause.resolve_any ~c ~d with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no clash accepted");
  let e = Clause.of_list [ nlit 1; nlit 2 ] in
  match Clause.resolve_any ~c ~d:e with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double clash accepted"

let test_clause_resolve_to_empty () =
  let r = Clause.resolve (Clause.singleton (lit 4)) (Clause.singleton (nlit 4)) ~pivot:4 in
  Alcotest.(check bool) "empty" true (Clause.is_empty r)

let test_clause_subsumes () =
  let small = Clause.of_list [ lit 1 ] in
  let big = Clause.of_list [ lit 1; nlit 2 ] in
  Alcotest.(check bool) "subset" true (Clause.subsumes small big);
  Alcotest.(check bool) "superset" false (Clause.subsumes big small);
  Alcotest.(check bool) "empty subsumes all" true (Clause.subsumes Clause.empty small)

let test_clause_satisfied_by () =
  let c = Clause.of_list [ lit 0; nlit 1 ] in
  Alcotest.(check bool) "sat by x0" true (Clause.satisfied_by c [| true; true |]);
  Alcotest.(check bool) "sat by ~x1" true (Clause.satisfied_by c [| false; false |]);
  Alcotest.(check bool) "unsat" false (Clause.satisfied_by c [| false; true |])

let prop_resolve_soundness =
  (* Any assignment satisfying both premises satisfies the resolvent. *)
  let open QCheck in
  let gen =
    Gen.map2
      (fun rest1 rest2 ->
        let mk neg rest =
          (* Polarity is a function of the variable, so no clause can
             be tautological. *)
          let of_raw v =
            let var = 1 + (v mod 5) in
            Lit.make var ~neg:(var mod 2 = 0)
          in
          Clause.of_list (Lit.make 0 ~neg :: List.sort_uniq compare (List.map of_raw rest))
        in
        (mk false rest1, mk true rest2))
      (Gen.list_size (Gen.int_bound 4) Gen.nat)
      (Gen.list_size (Gen.int_bound 4) Gen.nat)
  in
  let arb = make ~print:(fun (c, d) -> Format.asprintf "%a %a" Clause.pp c Clause.pp d) gen in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"resolution is sound" ~count:200 arb (fun (c, d) ->
         match Clause.resolve c d ~pivot:0 with
         | exception Invalid_argument _ -> true (* tautological resolvent: skip *)
         | r ->
           let ok = ref true in
           for mask = 0 to 63 do
             let assignment = Array.init 6 (fun v -> (mask lsr v) land 1 = 1) in
             if
               Clause.satisfied_by c assignment
               && Clause.satisfied_by d assignment
               && not (Clause.satisfied_by r assignment)
             then ok := false
           done;
           !ok))

(* --- Formula --- *)

let test_formula_basics () =
  let f = Formula.create () in
  let i0 = Formula.add_list f [ lit 0; nlit 2 ] in
  let i1 = Formula.add_list f [ lit 1 ] in
  Alcotest.(check int) "indices" 0 i0;
  Alcotest.(check int) "indices" 1 i1;
  Alcotest.(check int) "clauses" 2 (Formula.num_clauses f);
  Alcotest.(check int) "vars" 3 (Formula.num_vars f);
  Alcotest.(check bool) "mem" true (Formula.mem f (Clause.of_list [ nlit 2; lit 0 ]));
  Alcotest.(check bool) "not mem" false (Formula.mem f (Clause.singleton (lit 0)));
  Formula.ensure_vars f 10;
  Alcotest.(check int) "ensured vars" 10 (Formula.num_vars f)

let test_formula_copy_independent () =
  let f = Formula.create () in
  ignore (Formula.add_list f [ lit 0 ]);
  let g = Formula.copy f in
  ignore (Formula.add_list g [ lit 1 ]);
  Alcotest.(check int) "original unchanged" 1 (Formula.num_clauses f);
  Alcotest.(check int) "copy extended" 2 (Formula.num_clauses g)

(* --- Tseitin --- *)

let prop_tseitin_models_are_simulations =
  (* For a random small graph and every input assignment, the unique
     extension of the inputs by simulation satisfies the Tseitin CNF,
     and flipping any single internal node falsifies it. *)
  let arb =
    QCheck.make
      ~print:(fun seed -> string_of_int seed)
      QCheck.Gen.nat
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"tseitin characterizes simulations" ~count:60 arb (fun seed ->
         let g =
           Circuits.Random_aig.generate (Support.Rng.create seed) ~num_inputs:4 ~num_ands:12
             ~num_outputs:1
         in
         let f = Cnf.Tseitin.of_graph g in
         let num_nodes = Aig.num_nodes g in
         let ok = ref true in
         for mask = 0 to 15 do
           let inputs = Array.init 4 (fun i -> (mask lsr i) land 1 = 1) in
           (* Build the simulation-consistent assignment over all vars:
              var 0 (constant) is false. *)
           let assignment = Array.make (max num_nodes (Formula.num_vars f)) false in
           for i = 0 to 3 do
             assignment.(Lit.var (Aig.input g i)) <- inputs.(i)
           done;
           Aig.iter_ands g (fun n ->
               let value l = assignment.(Lit.var l) <> Lit.is_neg l in
               assignment.(n) <- value (Aig.fanin0 g n) && value (Aig.fanin1 g n));
           (* NB: the Tseitin unit clause (1) says "var 0 is false";
              satisfied_by reads assignment.(0) = false. *)
           if not (Formula.satisfied_by f assignment) then ok := false;
           (* Flip each AND node: must violate its definition. *)
           Aig.iter_ands g (fun n ->
               assignment.(n) <- not assignment.(n);
               if Formula.satisfied_by f assignment then ok := false;
               assignment.(n) <- not assignment.(n))
         done;
         !ok))

let test_tseitin_counts () =
  let g = Circuits.Adder.ripple_carry 2 in
  let f = Cnf.Tseitin.of_graph g in
  Alcotest.(check int) "3 clauses per AND plus constant unit"
    (1 + (3 * Aig.num_ands g))
    (Formula.num_clauses f);
  Alcotest.(check int) "vars = nodes" (Aig.num_nodes g) (Formula.num_vars f)

let test_tseitin_cone_subset () =
  let g = Circuits.Adder.ripple_carry 4 in
  let out0 = Aig.output g 0 in
  let whole = Cnf.Tseitin.of_graph g in
  let cone = Cnf.Tseitin.of_cone g [ out0 ] in
  Alcotest.(check bool) "cone is smaller" true
    (Formula.num_clauses cone < Formula.num_clauses whole);
  Formula.iter
    (fun c ->
      if not (Formula.mem whole c) then Alcotest.failf "cone clause not in whole formula")
    cone

let test_tseitin_add_cone_no_duplicates () =
  let g = Circuits.Adder.ripple_carry 4 in
  let f = Formula.create () in
  let added = Array.make (Aig.num_nodes g) false in
  Cnf.Tseitin.add_cone f g ~added [ Aig.output g 0 ];
  let n1 = Formula.num_clauses f in
  Cnf.Tseitin.add_cone f g ~added [ Aig.output g 0 ];
  Alcotest.(check int) "idempotent" n1 (Formula.num_clauses f);
  Cnf.Tseitin.add_cone f g ~added [ Aig.output g 4 ];
  Alcotest.(check bool) "new cone adds clauses" true (Formula.num_clauses f > n1)

let test_miter_formula_requires_single_output () =
  let g = Circuits.Adder.ripple_carry 2 in
  match Cnf.Tseitin.miter_formula g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "multi-output graph accepted"

(* --- DIMACS --- *)

let test_dimacs_roundtrip () =
  let f = Formula.create () in
  ignore (Formula.add_list f [ lit 0; nlit 1; lit 2 ]);
  ignore (Formula.add_list f [ nlit 0 ]);
  ignore (Formula.add_list f []);
  let f' = Cnf.Dimacs.of_string (Cnf.Dimacs.to_string f) in
  Alcotest.(check int) "clauses" (Formula.num_clauses f) (Formula.num_clauses f');
  Formula.iteri
    (fun i c -> Alcotest.check clause (Printf.sprintf "clause %d" i) c (Formula.clause f' i))
    f

let test_dimacs_comments_and_multiline () =
  let text = "c a comment\np cnf 3 2\n1 -2\n3 0\nc mid\n-1 2 0\n" in
  let f = Cnf.Dimacs.of_string text in
  Alcotest.(check int) "clauses" 2 (Formula.num_clauses f);
  Alcotest.check clause "multiline clause"
    (Clause.of_list [ lit 0; nlit 1; lit 2 ])
    (Formula.clause f 0)

let test_dimacs_errors () =
  let expect text =
    match Cnf.Dimacs.of_string text with
    | exception Cnf.Dimacs.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" text
  in
  expect "1 2 0\n";
  (* clause before header *)
  expect "p cnf x 2\n";
  expect "p cnf 2 1\n1 2\n" (* unterminated *)

let suites =
  [
    ( "cnf",
      [
        Alcotest.test_case "clause normalization" `Quick test_clause_normalization;
        Alcotest.test_case "tautology rejected" `Quick test_clause_tautology_rejected;
        Alcotest.test_case "resolve" `Quick test_clause_resolve;
        Alcotest.test_case "resolve errors" `Quick test_clause_resolve_errors;
        Alcotest.test_case "resolve to empty" `Quick test_clause_resolve_to_empty;
        Alcotest.test_case "subsumption" `Quick test_clause_subsumes;
        Alcotest.test_case "satisfied_by" `Quick test_clause_satisfied_by;
        prop_resolve_soundness;
        Alcotest.test_case "formula basics" `Quick test_formula_basics;
        Alcotest.test_case "formula copy" `Quick test_formula_copy_independent;
        prop_tseitin_models_are_simulations;
        Alcotest.test_case "tseitin clause counts" `Quick test_tseitin_counts;
        Alcotest.test_case "tseitin cone subset" `Quick test_tseitin_cone_subset;
        Alcotest.test_case "tseitin add_cone idempotent" `Quick test_tseitin_add_cone_no_duplicates;
        Alcotest.test_case "miter formula arity" `Quick test_miter_formula_requires_single_output;
        Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
        Alcotest.test_case "dimacs comments/multiline" `Quick test_dimacs_comments_and_multiline;
        Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
      ] );
  ]
