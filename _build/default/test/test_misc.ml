(* Tests for the later additions: misc circuit generators, BLIF I/O,
   NPN canonicalization, and unsat-core extraction. *)

module Rng = Support.Rng
module Npn = Synth.Npn

let bits_of_int n width = Array.init width (fun i -> (n lsr i) land 1 = 1)

let int_of_bits bits =
  Array.to_list bits |> List.mapi (fun i b -> if b then 1 lsl i else 0) |> List.fold_left ( + ) 0

(* --- misc circuits --- *)

let test_barrel_shifter () =
  let k = 3 in
  let width = 1 lsl k in
  let g = Circuits.Misc_logic.barrel_shifter k in
  for amount = 0 to width - 1 do
    for data = 0 to min 255 ((1 lsl width) - 1) do
      let assignment = Array.append (bits_of_int amount k) (bits_of_int data width) in
      let result = int_of_bits (Aig.eval g assignment) in
      let expected = (data lsl amount) land ((1 lsl width) - 1) in
      if result <> expected then
        Alcotest.failf "shift %d << %d: expected %d got %d" data amount expected result
    done
  done

let test_priority_encoder () =
  let n = 6 in
  let g = Circuits.Misc_logic.priority_encoder n in
  for mask = 0 to (1 lsl n) - 1 do
    let assignment = bits_of_int mask n in
    let outputs = Aig.eval g assignment in
    let valid = outputs.(Array.length outputs - 1) in
    if mask = 0 then Alcotest.(check bool) "invalid when no request" false valid
    else begin
      Alcotest.(check bool) "valid" true valid;
      let index = int_of_bits (Array.sub outputs 0 (Array.length outputs - 1)) in
      let expected =
        let rec first i = if (mask lsr i) land 1 = 1 then i else first (i + 1) in
        first 0
      in
      if index <> expected then Alcotest.failf "prio(%d): expected %d got %d" mask expected index
    end
  done

let test_gray_roundtrip () =
  let n = 6 in
  let to_gray = Circuits.Misc_logic.binary_to_gray n in
  let to_bin = Circuits.Misc_logic.gray_to_binary n in
  for v = 0 to (1 lsl n) - 1 do
    let gray = int_of_bits (Aig.eval to_gray (bits_of_int v n)) in
    Alcotest.(check int) "standard gray code" (v lxor (v lsr 1)) gray;
    let back = int_of_bits (Aig.eval to_bin (bits_of_int gray n)) in
    Alcotest.(check int) "roundtrip" v back
  done;
  (* consecutive codes differ in exactly one bit *)
  for v = 0 to (1 lsl n) - 2 do
    let g1 = v lxor (v lsr 1) and g2 = (v + 1) lxor ((v + 1) lsr 1) in
    let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
    Alcotest.(check int) "hamming distance one" 1 (popcount (g1 lxor g2))
  done

let test_majority3 () =
  let n = 3 in
  let g = Circuits.Misc_logic.majority3 n in
  for a = 0 to 7 do
    for b = 0 to 7 do
      for c = 0 to 7 do
        let assignment =
          Array.concat [ bits_of_int a n; bits_of_int b n; bits_of_int c n ]
        in
        let result = int_of_bits (Aig.eval g assignment) in
        let expected = (a land b) lor (a land c) lor (b land c) in
        if result <> expected then Alcotest.failf "maj(%d,%d,%d)" a b c
      done
    done
  done

(* --- BLIF --- *)

let same_function a b =
  let n = Aig.num_inputs a in
  assert (n <= 14);
  let ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    let assignment = Array.init n (fun i -> (mask lsr i) land 1 = 1) in
    if Aig.eval a assignment <> Aig.eval b assignment then ok := false
  done;
  !ok

let test_blif_roundtrip () =
  List.iter
    (fun g ->
      let g' = Aig.Blif.of_string (Aig.Blif.to_string g) in
      Alcotest.(check int) "inputs" (Aig.num_inputs g) (Aig.num_inputs g');
      Alcotest.(check int) "outputs" (Aig.num_outputs g) (Aig.num_outputs g');
      Alcotest.(check bool) "same function" true (same_function g g'))
    [
      Circuits.Adder.ripple_carry 4;
      Circuits.Datapath.alu 3;
      Circuits.Misc_logic.priority_encoder 5;
      Circuits.Random_aig.generate (Rng.create 3) ~num_inputs:5 ~num_ands:30 ~num_outputs:3;
    ]

let test_blif_constant_outputs () =
  let g = Aig.create ~num_inputs:1 in
  Aig.add_output g Aig.Lit.false_;
  Aig.add_output g Aig.Lit.true_;
  Aig.add_output g (Aig.Lit.neg (Aig.input g 0));
  let g' = Aig.Blif.of_string (Aig.Blif.to_string g) in
  Alcotest.(check (list bool)) "constants and inverter" [ false; true; true ]
    (Array.to_list (Aig.eval g' [| false |]))

let test_blif_hand_written () =
  (* Gates out of order, don't-cares, off-set table, continuation. *)
  let text =
    ".model test\n.inputs a b c\n.outputs f\n.names t1 c f\n11 1\n.names a \\\nb t1\n1- 0\n-1 0\n.end\n"
  in
  let g = Aig.Blif.of_string text in
  (* t1 = off-set rows (a OR b) -> t1 = ~(a|b); f = t1 AND c *)
  for mask = 0 to 7 do
    let a = mask land 1 = 1 and b = (mask lsr 1) land 1 = 1 and c = mask lsr 2 = 1 in
    let expected = (not (a || b)) && c in
    Alcotest.(check bool) (Printf.sprintf "f(%d)" mask) expected (Aig.eval g [| a; b; c |]).(0)
  done

let test_blif_errors () =
  let expect text =
    match Aig.Blif.of_string text with
    | exception Aig.Blif.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" text
  in
  expect ".model m\n.inputs a\n.outputs q\n.latch a q\n.end\n";
  expect ".model m\n.inputs a\n.outputs f\n.end\n";
  (* undefined f *)
  expect ".model m\n.inputs a\n.outputs f\n.names f f\n1 1\n.end\n";
  (* cycle *)
  expect ".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end\n" (* arity *)

(* --- NPN --- *)

let test_npn_identity_and_negation () =
  (* x0 AND x1 vs its complement vs OR: AND ~ OR under NPN (De Morgan),
     and any function ~ its own complement. *)
  let and2 = 0x8L and or2 = 0xEL in
  Alcotest.(check bool) "and ~ or" true (Npn.equivalent ~vars:2 and2 or2);
  Alcotest.(check bool) "and ~ nand" true
    (Npn.equivalent ~vars:2 and2 (Int64.logand (Int64.lognot and2) 0xFL));
  Alcotest.(check bool) "and !~ xor" false (Npn.equivalent ~vars:2 and2 0x6L)

let test_npn_transform_is_witness () =
  (* canonical's transform really maps the function to the canon. *)
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let truth = Int64.logand (Rng.int64 rng) 0xFFFFL in
    let canon, t = Npn.canonical ~vars:4 truth in
    Alcotest.(check int64) "witness transform" canon (Npn.apply ~vars:4 t truth)
  done

let test_npn_class_invariance () =
  (* Random transforms of a function all share its canonical form. *)
  let rng = Rng.create 6 in
  for _ = 1 to 100 do
    let truth = Int64.logand (Rng.int64 rng) 0xFFFFL in
    let canon, _ = Npn.canonical ~vars:4 truth in
    let perm =
      match Rng.int rng 4 with
      | 0 -> [| 0; 1; 2; 3 |]
      | 1 -> [| 3; 2; 1; 0 |]
      | 2 -> [| 1; 0; 3; 2 |]
      | _ -> [| 2; 3; 0; 1 |]
    in
    let t = { Npn.perm; input_neg = Rng.int rng 16; output_neg = Rng.bool rng } in
    let transformed = Npn.apply ~vars:4 t truth in
    let canon', _ = Npn.canonical ~vars:4 transformed in
    Alcotest.(check int64) "same class" canon canon'
  done

(* --- unsat cores --- *)

let is_unsat f =
  let s = Sat.Solver.create () in
  Sat.Solver.add_formula s f;
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat _ -> true
  | Sat.Solver.Sat _ -> false
  | Sat.Solver.Unknown | Sat.Solver.Unsat_assuming _ -> false

let test_core_extraction () =
  let lit v = Aig.Lit.of_var v and nlit v = Aig.Lit.neg (Aig.Lit.of_var v) in
  let f = Cnf.Formula.create () in
  (* An unsat kernel over x0,x1 plus irrelevant satisfiable clutter. *)
  List.iter
    (fun lits -> ignore (Cnf.Formula.add_list f lits))
    [
      [ lit 0; lit 1 ]; [ nlit 0; lit 1 ]; [ lit 0; nlit 1 ]; [ nlit 0; nlit 1 ];
      [ lit 2; lit 3 ]; [ nlit 4 ]; [ lit 5; nlit 2 ];
    ]
  ;
  let s = Sat.Solver.create () in
  Sat.Solver.add_formula s f;
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat root ->
    let core = Proof.Core.of_proof f (Sat.Solver.proof s) ~root in
    Alcotest.(check bool) "core within kernel" true (List.for_all (fun i -> i < 4) core);
    let minimal = Proof.Core.minimize ~is_unsat f core in
    Alcotest.(check int) "kernel is the MUS" 4 (List.length minimal);
    (* the minimal core must itself be unsat *)
    let sub = Cnf.Formula.create () in
    List.iter (fun i -> ignore (Cnf.Formula.add sub (Cnf.Formula.clause f i))) minimal;
    Alcotest.(check bool) "minimal core unsat" true (is_unsat sub)
  | _ -> Alcotest.fail "expected UNSAT"

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter;
        Alcotest.test_case "priority encoder" `Quick test_priority_encoder;
        Alcotest.test_case "gray code roundtrip" `Quick test_gray_roundtrip;
        Alcotest.test_case "majority3" `Quick test_majority3;
        Alcotest.test_case "blif roundtrip" `Quick test_blif_roundtrip;
        Alcotest.test_case "blif constant outputs" `Quick test_blif_constant_outputs;
        Alcotest.test_case "blif hand-written" `Quick test_blif_hand_written;
        Alcotest.test_case "blif errors" `Quick test_blif_errors;
        Alcotest.test_case "npn and/or/nand" `Quick test_npn_identity_and_negation;
        Alcotest.test_case "npn transform witness" `Quick test_npn_transform_is_witness;
        Alcotest.test_case "npn class invariance" `Quick test_npn_class_invariance;
        Alcotest.test_case "unsat core + minimize" `Quick test_core_extraction;
      ] );
  ]
