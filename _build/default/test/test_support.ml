(* Tests for the support library: int/float vectors and the PRNG. *)

module Veci = Support.Veci
module Vecf = Support.Vecf
module Rng = Support.Rng

let test_veci_push_pop () =
  let v = Veci.create () in
  for i = 0 to 99 do
    Veci.push v i
  done;
  Alcotest.(check int) "size" 100 (Veci.size v);
  Alcotest.(check int) "last" 99 (Veci.last v);
  for i = 99 downto 0 do
    Alcotest.(check int) "pop order" i (Veci.pop v)
  done;
  Alcotest.(check bool) "empty" true (Veci.is_empty v)

let test_veci_grow_shrink () =
  let v = Veci.make 3 7 in
  Alcotest.(check (list int)) "make" [ 7; 7; 7 ] (Veci.to_list v);
  Veci.grow v 6 1;
  Alcotest.(check (list int)) "grow" [ 7; 7; 7; 1; 1; 1 ] (Veci.to_list v);
  Veci.shrink v 2;
  Alcotest.(check (list int)) "shrink" [ 7; 7 ] (Veci.to_list v);
  Veci.clear v;
  Alcotest.(check int) "clear" 0 (Veci.size v)

let test_veci_sort_swap () =
  let v = Veci.of_list [ 3; 1; 2 ] in
  Veci.swap v 0 2;
  Alcotest.(check (list int)) "swap" [ 2; 1; 3 ] (Veci.to_list v);
  Veci.sort v;
  Alcotest.(check (list int)) "sort" [ 1; 2; 3 ] (Veci.to_list v)

let test_veci_iter_fold () =
  let v = Veci.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold sum" 10 (Veci.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Veci.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Veci.exists (fun x -> x = 9) v);
  let copy = Veci.copy v in
  Veci.set copy 0 100;
  Alcotest.(check int) "copy is independent" 1 (Veci.get v 0)

let test_vecf () =
  let v = Vecf.create () in
  Vecf.push v 1.5;
  Vecf.grow v 3 0.5;
  Vecf.scale v 2.0;
  Alcotest.(check (float 1e-9)) "scaled first" 3.0 (Vecf.get v 0);
  Alcotest.(check (float 1e-9)) "scaled grown" 1.0 (Vecf.get v 2);
  Alcotest.(check int) "size" 3 (Vecf.size v)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "Rng.int out of bounds: %d" x;
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "Rng.float out of bounds: %f" f
  done

let test_rng_distribution () =
  (* Coarse uniformity check: each of 8 buckets within 3x of the mean. *)
  let rng = Rng.create 77 in
  let buckets = Array.make 8 0 in
  let n = 16_000 in
  for _ = 1 to n do
    let i = Rng.int rng 8 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i count ->
      if count < n / 8 / 3 || count > n / 8 * 3 then
        Alcotest.failf "bucket %d has suspicious count %d" i count)
    buckets

let test_rng_split () =
  let rng = Rng.create 9 in
  let child = Rng.split rng in
  (* Streams should diverge quickly. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 rng = Rng.int64 child then incr same
  done;
  Alcotest.(check bool) "split independent" true (!same < 4)

let suites =
  [
    ( "support",
      [
        Alcotest.test_case "veci push/pop" `Quick test_veci_push_pop;
        Alcotest.test_case "veci grow/shrink" `Quick test_veci_grow_shrink;
        Alcotest.test_case "veci sort/swap" `Quick test_veci_sort_swap;
        Alcotest.test_case "veci iter/fold/copy" `Quick test_veci_iter_fold;
        Alcotest.test_case "vecf" `Quick test_vecf;
        Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng distribution" `Quick test_rng_distribution;
        Alcotest.test_case "rng split" `Quick test_rng_split;
      ] );
  ]
