(* Tests for the SAT package: Luby sequence, heap, CDCL solver versus
   the brute-force oracle, and the proofs logged on UNSAT runs. *)

module Clause = Cnf.Clause
module Formula = Cnf.Formula
module Lit = Aig.Lit
module Solver = Sat.Solver
module R = Proof.Resolution

let lit v = Lit.of_var v
let nlit v = Lit.neg (Lit.of_var v)

let formula_of_lists lists =
  let f = Formula.create () in
  List.iter (fun lits -> ignore (Formula.add_list f lits)) lists;
  f

let check_unsat_proof f root proof =
  match Proof.Checker.check proof ~root ~formula:f () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "proof check failed: %a" Proof.Checker.pp_error e

let solve_and_verify f =
  let s = Solver.create () in
  Solver.add_formula s f;
  match Solver.solve s with
  | Solver.Sat model ->
    Alcotest.(check bool) "model satisfies formula" true (Formula.satisfied_by f model);
    true
  | Solver.Unsat root ->
    check_unsat_proof f root (Solver.proof s);
    false
  | Solver.Unknown -> Alcotest.fail "unexpected Unknown"
  | Solver.Unsat_assuming _ -> Alcotest.fail "unexpected Unsat_assuming"

let test_luby () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  let actual = List.init (List.length expected) Sat.Luby.term in
  Alcotest.(check (list int)) "luby prefix" expected actual

let test_heap () =
  let scores = [| 5.0; 1.0; 9.0; 3.0 |] in
  let h = Sat.Heap.create (fun v -> scores.(v)) in
  List.iter (Sat.Heap.insert h) [ 0; 1; 2; 3 ];
  Alcotest.(check int) "max first" 2 (Sat.Heap.pop h);
  scores.(1) <- 100.0;
  Sat.Heap.update h 1;
  Alcotest.(check int) "after update" 1 (Sat.Heap.pop h);
  Alcotest.(check int) "then" 0 (Sat.Heap.pop h);
  Alcotest.(check int) "last" 3 (Sat.Heap.pop h);
  Alcotest.(check bool) "empty" true (Sat.Heap.is_empty h)

let test_trivial_sat () =
  let f = formula_of_lists [ [ lit 0 ]; [ nlit 1 ] ] in
  Alcotest.(check bool) "sat" true (solve_and_verify f)

let test_trivial_unsat () =
  let f = formula_of_lists [ [ lit 0 ]; [ nlit 0 ] ] in
  Alcotest.(check bool) "unsat" false (solve_and_verify f)

let test_empty_clause () =
  let f = formula_of_lists [ [] ] in
  Alcotest.(check bool) "unsat" false (solve_and_verify f)

let test_pigeonhole () =
  (* 3 pigeons, 2 holes: p(i,h) with i in 0..2, h in 0..1. *)
  let v i h = (i * 2) + h in
  let f = Formula.create () in
  for i = 0 to 2 do
    ignore (Formula.add_list f [ lit (v i 0); lit (v i 1) ])
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        ignore (Formula.add_list f [ nlit (v i h); nlit (v j h) ])
      done
    done
  done;
  Alcotest.(check bool) "php(3,2) unsat" false (solve_and_verify f)

let test_random_vs_brute () =
  (* Random 3-CNFs around the phase transition, checked against the
     brute-force oracle, with proofs verified on every UNSAT answer. *)
  let rng = Support.Rng.create 42 in
  for _ = 1 to 200 do
    let nvars = 4 + Support.Rng.int rng 9 in
    let nclauses = int_of_float (4.3 *. float_of_int nvars) in
    let f = Formula.create () in
    Formula.ensure_vars f nvars;
    for _ = 1 to nclauses do
      let rec pick acc k =
        if k = 0 then acc
        else
          let v = Support.Rng.int rng nvars in
          if List.exists (fun l -> Lit.var l = v) acc then pick acc k
          else pick (Lit.make v ~neg:(Support.Rng.bool rng) :: acc) (k - 1)
      in
      ignore (Formula.add f (Clause.of_list (pick [] 3)))
    done;
    let expected =
      match Sat.Brute.solve f with
      | Sat.Brute.Sat _ -> true
      | Sat.Brute.Unsat -> false
    in
    let actual = solve_and_verify f in
    Alcotest.(check bool) "agreement with oracle" expected actual
  done

let test_assumption_units_lift () =
  (* F = (x0 -> x1) (x1 -> x2); assume x0 and ~x2: UNSAT.  Lifting must
     derive a sub-clause of (~x0 \/ x2) from F alone. *)
  let s = Solver.create () in
  Solver.add_clause s (Clause.of_list [ nlit 0; lit 1 ]);
  Solver.add_clause s (Clause.of_list [ nlit 1; lit 2 ]);
  Solver.add_clause ~assumption:true s (Clause.singleton (lit 0));
  Solver.add_clause ~assumption:true s (Clause.singleton (nlit 2));
  (match Solver.solve s with
  | Solver.Unsat root ->
    let proof = Solver.proof s in
    let lifted_root, lifted = Proof.Lift.refutation proof ~root in
    let expected = Clause.of_list [ nlit 0; lit 2 ] in
    Alcotest.(check bool) "lifted subsumes" true (Clause.subsumes lifted expected);
    let f = formula_of_lists [ [ nlit 0; lit 1 ]; [ nlit 1; lit 2 ] ] in
    (match Proof.Checker.check_derivation proof ~root:lifted_root ~expected ~formula:f () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "lifted derivation rejected: %a" Proof.Checker.pp_error e)
  | Solver.Sat _ | Solver.Unknown | Solver.Unsat_assuming _ -> Alcotest.fail "expected UNSAT")

let test_unknown_budget () =
  (* A hard instance with a conflict budget of 0 must return Unknown
     (or decide instantly without any conflict). *)
  let v i h = (i * 4) + h in
  let f = Formula.create () in
  for i = 0 to 4 do
    ignore (Formula.add_list f (List.init 4 (fun h -> lit (v i h))))
  done;
  for h = 0 to 3 do
    for i = 0 to 4 do
      for j = i + 1 to 4 do
        ignore (Formula.add_list f [ nlit (v i h); nlit (v j h) ])
      done
    done
  done;
  let s = Solver.create () in
  Solver.add_formula s f;
  match Solver.solve ~max_conflicts:0 s with
  | Solver.Unknown -> ()
  | Solver.Unsat _ | Solver.Unsat_assuming _ ->
    Alcotest.fail "php(5,4) should not refute within 0 conflicts"
  | Solver.Sat _ -> Alcotest.fail "php(5,4) is unsatisfiable"

let base_suites =
  [
    ( "sat",
      [
        Alcotest.test_case "luby prefix" `Quick test_luby;
        Alcotest.test_case "heap order" `Quick test_heap;
        Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
        Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
        Alcotest.test_case "empty clause" `Quick test_empty_clause;
        Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole;
        Alcotest.test_case "random 3-CNF vs oracle" `Quick test_random_vs_brute;
        Alcotest.test_case "assumption lifting" `Quick test_assumption_units_lift;
        Alcotest.test_case "conflict budget" `Quick test_unknown_budget;
      ] );
  ]

(* --- native assumptions --- *)

let test_native_assumptions_sat () =
  let s = Solver.create () in
  Solver.add_clause s (Clause.of_list [ lit 0; lit 1 ]);
  match Solver.solve ~assumptions:[ nlit 0 ] s with
  | Solver.Sat model ->
    Alcotest.(check bool) "assumption honoured" false model.(0);
    Alcotest.(check bool) "clause satisfied" true model.(1)
  | Solver.Unsat _ | Solver.Unsat_assuming _ | Solver.Unknown ->
    Alcotest.fail "expected SAT under assumptions"

let test_native_assumptions_lemma () =
  (* F = (x0 -> x1)(x1 -> x2); assuming x0, ~x2 must fail with a proved
     clause subsuming (~x0 \/ x2). *)
  let s = Solver.create () in
  Solver.add_clause s (Clause.of_list [ nlit 0; lit 1 ]);
  Solver.add_clause s (Clause.of_list [ nlit 1; lit 2 ]);
  match Solver.solve ~assumptions:[ lit 0; nlit 2 ] s with
  | Solver.Unsat_assuming { clause; pid } -> (
    let expected = Clause.of_list [ nlit 0; lit 2 ] in
    Alcotest.(check bool) "lemma subsumes" true (Clause.subsumes clause expected);
    let f = formula_of_lists [ [ nlit 0; lit 1 ]; [ nlit 1; lit 2 ] ] in
    match Proof.Checker.check_derivation (Solver.proof s) ~root:pid ~expected ~formula:f () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "lemma derivation rejected: %a" Proof.Checker.pp_error e)
  | Solver.Sat _ | Solver.Unsat _ | Solver.Unknown -> Alcotest.fail "expected Unsat_assuming"

let test_native_assumptions_reusable () =
  (* The solver must answer consistently across many queries, keeping
     learned clauses, and remain SAT-complete between failing calls. *)
  let s = Solver.create () in
  Solver.add_clause s (Clause.of_list [ nlit 0; lit 1 ]);
  Solver.add_clause s (Clause.of_list [ nlit 1; lit 2 ]);
  (match Solver.solve ~assumptions:[ lit 0 ] s with
  | Solver.Sat model -> Alcotest.(check bool) "propagated" true model.(2)
  | _ -> Alcotest.fail "expected SAT");
  (match Solver.solve ~assumptions:[ lit 0; nlit 2 ] s with
  | Solver.Unsat_assuming _ -> ()
  | _ -> Alcotest.fail "expected Unsat_assuming");
  (match Solver.solve ~assumptions:[ nlit 2 ] s with
  | Solver.Sat model -> Alcotest.(check bool) "x0 forced off" false model.(0)
  | _ -> Alcotest.fail "expected SAT");
  match Solver.solve s with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected SAT with no assumptions"

let test_native_assumptions_random () =
  (* Against brute force: for random satisfiable formulas and random
     assumption sets, Sat models satisfy everything, and every
     Unsat_assuming lemma is a checked derivation over the negated
     assumptions. *)
  let rng = Support.Rng.create 77 in
  for _ = 1 to 100 do
    let nvars = 4 + Support.Rng.int rng 6 in
    let f = Formula.create () in
    Formula.ensure_vars f nvars;
    for _ = 1 to 3 * nvars do
      let rec pick acc k =
        if k = 0 then acc
        else
          let v = Support.Rng.int rng nvars in
          if List.exists (fun l -> Lit.var l = v) acc then pick acc k
          else pick (Lit.make v ~neg:(Support.Rng.bool rng) :: acc) (k - 1)
      in
      ignore (Formula.add f (Clause.of_list (pick [] 3)))
    done;
    let num_assumptions = 1 + Support.Rng.int rng 3 in
    let rec pick_assumptions acc k =
      if k = 0 then acc
      else
        let v = Support.Rng.int rng nvars in
        if List.exists (fun l -> Lit.var l = v) acc then pick_assumptions acc k
        else pick_assumptions (Lit.make v ~neg:(Support.Rng.bool rng) :: acc) (k - 1)
    in
    let assumptions = pick_assumptions [] num_assumptions in
    let s = Solver.create () in
    Solver.add_formula s f;
    (* Oracle: add assumptions as clauses to a copy. *)
    let f_plus = Formula.copy f in
    List.iter (fun l -> ignore (Formula.add f_plus (Clause.singleton l))) assumptions;
    let expected =
      match Sat.Brute.solve f_plus with
      | Sat.Brute.Sat _ -> true
      | Sat.Brute.Unsat -> false
    in
    match Solver.solve ~assumptions s with
    | Solver.Sat model ->
      Alcotest.(check bool) "oracle agrees (sat)" true expected;
      Alcotest.(check bool) "model satisfies" true (Formula.satisfied_by f model);
      List.iter
        (fun l ->
          Alcotest.(check bool) "assumption honoured" true (model.(Lit.var l) <> Lit.is_neg l))
        assumptions
    | Solver.Unsat_assuming { clause; pid } ->
      Alcotest.(check bool) "oracle agrees (unsat-assuming)" false expected;
      let negated = Clause.of_list (List.map Lit.neg assumptions) in
      Alcotest.(check bool) "lemma over negated assumptions" true (Clause.subsumes clause negated);
      (match
         Proof.Checker.check_derivation (Solver.proof s) ~root:pid ~expected:negated ~formula:f ()
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "lemma rejected: %a" Proof.Checker.pp_error e)
    | Solver.Unsat root ->
      (* Globally unsat: stronger than unsat-under-assumptions. *)
      Alcotest.(check bool) "oracle agrees (unsat)" false expected;
      check_unsat_proof f root (Solver.proof s)
    | Solver.Unknown -> Alcotest.fail "unexpected Unknown"
  done

let assumption_suites =
  [
    ( "sat-assumptions",
      [
        Alcotest.test_case "sat under assumptions" `Quick test_native_assumptions_sat;
        Alcotest.test_case "lemma from failed assumptions" `Quick test_native_assumptions_lemma;
        Alcotest.test_case "incremental reuse" `Quick test_native_assumptions_reusable;
        Alcotest.test_case "random queries vs oracle" `Quick test_native_assumptions_random;
      ] );
  ]

(* --- clause-database reduction --- *)

let test_reduction_oracle () =
  (* A tiny reduction threshold forces constant clause deletion; the
     solver must stay correct and its proofs checkable. *)
  let rng = Support.Rng.create 314 in
  for _ = 1 to 60 do
    let nvars = 6 + Support.Rng.int rng 6 in
    let f = Formula.create () in
    Formula.ensure_vars f nvars;
    for _ = 1 to int_of_float (4.4 *. float_of_int nvars) do
      let rec pick acc k =
        if k = 0 then acc
        else
          let v = Support.Rng.int rng nvars in
          if List.exists (fun l -> Lit.var l = v) acc then pick acc k
          else pick (Lit.make v ~neg:(Support.Rng.bool rng) :: acc) (k - 1)
      in
      ignore (Formula.add f (Clause.of_list (pick [] 3)))
    done;
    let s = Solver.create ~reduce_base:20 () in
    Solver.add_formula s f;
    let expected =
      match Sat.Brute.solve f with
      | Sat.Brute.Sat _ -> true
      | Sat.Brute.Unsat -> false
    in
    match Solver.solve s with
    | Solver.Sat model ->
      Alcotest.(check bool) "oracle (sat)" true expected;
      Alcotest.(check bool) "model ok" true (Formula.satisfied_by f model)
    | Solver.Unsat root ->
      Alcotest.(check bool) "oracle (unsat)" false expected;
      check_unsat_proof f root (Solver.proof s)
    | Solver.Unknown | Solver.Unsat_assuming _ -> Alcotest.fail "unexpected result"
  done

let test_reduction_pigeonhole () =
  (* php(6,5) generates thousands of conflicts: with reduce_base=50 the
     database is reduced many times and the final proof still checks. *)
  let v i h = (i * 5) + h in
  let f = Formula.create () in
  for i = 0 to 5 do
    ignore (Formula.add_list f (List.init 5 (fun h -> lit (v i h))))
  done;
  for h = 0 to 4 do
    for i = 0 to 5 do
      for j = i + 1 to 5 do
        ignore (Formula.add_list f [ nlit (v i h); nlit (v j h) ])
      done
    done
  done;
  let s = Solver.create ~reduce_base:50 () in
  Solver.add_formula s f;
  match Solver.solve s with
  | Solver.Unsat root -> check_unsat_proof f root (Solver.proof s)
  | Solver.Sat _ | Solver.Unknown | Solver.Unsat_assuming _ ->
    Alcotest.fail "php(6,5) must be refuted"

let reduction_suites =
  [
    ( "sat-reduction",
      [
        Alcotest.test_case "oracle under heavy deletion" `Quick test_reduction_oracle;
        Alcotest.test_case "pigeonhole under deletion" `Quick test_reduction_pigeonhole;
      ] );
  ]

let suites = base_suites @ assumption_suites @ reduction_suites
