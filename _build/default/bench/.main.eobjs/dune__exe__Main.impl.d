bench/main.ml: Aig Analyze Array Bdd Bechamel Benchmark Cec_core Circuits Hashtbl Lazy List Measure Option Printf Proof Staged Support Synth Sys Tables Test Time Toolkit Unix
