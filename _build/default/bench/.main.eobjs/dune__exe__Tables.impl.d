bench/tables.ml: Buffer List Printf String
