bench/main.mli:
