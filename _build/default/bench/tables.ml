(* Plain-text table rendering for the experiment harness. *)

let render ~title ~columns ~rows =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length col) rows)
      columns
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  let render_row cells = String.concat " | " (List.map2 pad cells widths) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  Buffer.add_string buf (render_row columns ^ "\n");
  Buffer.add_string buf (line ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let print ~title ~columns ~rows =
  print_string (render ~title ~columns ~rows ^ "\n");
  (* The harness may run for minutes piped into tee: flush per table so
     partial output survives interruption. *)
  flush stdout

let fmt_float f = Printf.sprintf "%.3f" f
let fmt_ms seconds = Printf.sprintf "%.1f" (seconds *. 1000.0)
let fmt_ratio num den = if den = 0.0 then "-" else Printf.sprintf "%.2fx" (num /. den)
